package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"sdntamper/internal/attack"
	"sdntamper/internal/cluster"
	"sdntamper/internal/controller"
	"sdntamper/internal/dataplane"
	"sdntamper/internal/link"
	"sdntamper/internal/netsim"
	"sdntamper/internal/ratemon"
	"sdntamper/internal/tgplus"
	"sdntamper/internal/topoguard"
)

// ClusterScenario is the Figure 9 testbed under a replicated control
// plane on a sharded network: two controller replicas on the control
// shard, switches 1-2 mastered by replica 0 and switches 3-4 by
// replica 1, every replica running its own copy of the selected defense
// stack. The mastership split is chosen so the fabricated link's two
// LLDP directions — (2,1)→(3,1) and (3,1)→(2,1) — are adjudicated by
// DIFFERENT replicas, the partitioned-view condition the matrix
// evaluates.
//
// Trunks use the steady (burst-free) latency so a defense alert in a
// cluster experiment is evidence, never an IQR-tail artifact.
type ClusterScenario struct {
	Net     *netsim.ShardedNetwork
	Cluster *cluster.Cluster
	Def     Defenses
	// OOB is the attackers' side channel (unwired until an attack
	// bridges it), living on the control shard like the attacker hosts.
	OOB *link.Channel

	ctls []*controller.Controller
	mods []defenseModules
}

// fig9ClusterPartition spreads the Figure 9 line over the shards while
// keeping the attack-adjacent middle (switches 2 and 3, both attacker
// hosts, the OOB channel) on the control shard: switch 1 moves to shard
// 1 and switch 4 to the last extra shard. Identity-seeded RNG streams
// make placement irrelevant to the simulation's outcome; this spread
// exists to prove exactly that for the cluster layer.
func fig9ClusterPartition(shards int) map[uint64]int {
	part := map[uint64]int{1: 0, 2: 0, 3: 0, 4: 0}
	if shards > 1 {
		part[1] = 1
		part[4] = 1
	}
	if shards > 2 {
		part[4] = 2
	}
	return part
}

// NewClusterFig9Scenario assembles the clustered Figure 9 testbed.
// replicate selects whether the replicas share the replicated log (the
// deployment mode) or run with fully isolated views (the
// partitioned-matrix control variant). The LLI runs with
// RequireControlEstimates: a replica without fresh control baselines
// for a link's endpoints records the measurement unenforced instead of
// guessing.
func NewClusterFig9Scenario(seed int64, shards int, def Defenses, replicate bool) *ClusterScenario {
	if def.LLI && def.LLIConfig == nil {
		lcfg := tgplus.DefaultLLIConfig()
		lcfg.RequireControlEstimates = true
		def.LLIConfig = &lcfg
	}
	net := netsim.NewSharded(seed, shards, fig9ClusterPartition(shards), defenseOptions(def, nil)...)
	net.SetAutoAttach(false)
	for dpid := uint64(1); dpid <= 4; dpid++ {
		net.AddSwitch(dpid, nil)
	}
	net.AddTrunk(1, 3, 2, 3, testbedHostLink())
	net.AddTrunk(2, 4, 3, 4, testbedHostLink())
	net.AddTrunk(3, 3, 4, 3, testbedHostLink())
	net.AddHost(HostClient, "cc:cc:cc:cc:cc:01", "10.0.0.1", 1, 1, testbedHostLink())
	net.AddHost(HostAttackerA, "aa:aa:aa:aa:aa:01", "10.0.0.11", 2, 1, testbedHostLink())
	net.AddHost(HostAttackerB, "aa:aa:aa:aa:aa:02", "10.0.0.12", 3, 1, testbedHostLink())
	net.AddHost(HostServer, "cc:cc:cc:cc:cc:02", "10.0.0.2", 4, 1, testbedHostLink(),
		dataplane.WithOpenTCPPorts(80))
	oob := net.AddOOBChannel(OOBLatency())

	ccfg := cluster.DefaultConfig(seed)
	ccfg.Metrics = net.ShardMetrics(0)
	ccfg.Replicate = replicate
	cl := cluster.New(net, ccfg)

	s := &ClusterScenario{Net: net, Cluster: cl, Def: def, OOB: oob}
	for i := 0; i < 2; i++ {
		ctl := net.Controller
		if i > 0 {
			// Extra replicas run on the control kernel and record into the
			// control shard's registry, so merged metrics aggregate the
			// whole control plane and stay byte-identical across shard
			// counts.
			opts := append([]controller.Option{controller.WithMetrics(net.ShardMetrics(0))},
				defenseOptions(def, nil)...)
			ctl = controller.New(net.ControlKernel(), opts...)
		}
		r := cl.AddReplica(ctl)
		m := deployDefenses(ctl, def)
		if m.LLI != nil {
			r.OnCrash(m.LLI.Stop)
			r.OnRestart(m.LLI.Start)
		}
		if m.RateMon != nil {
			r.OnCrash(m.RateMon.Stop)
			r.OnRestart(m.RateMon.Start)
		}
		s.ctls = append(s.ctls, ctl)
		s.mods = append(s.mods, m)
	}
	cl.SetMaster(1, 0)
	cl.SetMaster(2, 0)
	cl.SetMaster(3, 1)
	cl.SetMaster(4, 1)
	return s
}

// Replica returns one replica's controller.
func (s *ClusterScenario) Replica(i int) *controller.Controller { return s.ctls[i] }

// LLI returns one replica's Link Latency Inspector (nil if not deployed).
func (s *ClusterScenario) LLI(i int) *tgplus.LLI { return s.mods[i].LLI }

// Run advances the whole simulation.
func (s *ClusterScenario) Run(d time.Duration) error { return s.Net.Run(d) }

// Close stops every replica's defense tickers and controllers.
func (s *ClusterScenario) Close() {
	for _, m := range s.mods {
		if m.Sphinx != nil {
			m.Sphinx.Stop()
		}
		if m.LLI != nil {
			m.LLI.Stop()
		}
		if m.RateMon != nil {
			m.RateMon.Stop()
		}
	}
	for _, ctl := range s.ctls {
		ctl.Shutdown()
	}
	s.Net.Shutdown()
}

// AlertTotal sums the alerts every replica has raised.
func (s *ClusterScenario) AlertTotal() int {
	total := 0
	for _, ctl := range s.ctls {
		total += len(ctl.Alerts())
	}
	return total
}

// alertReasonCount sums one alert reason across the replicas.
func (s *ClusterScenario) alertReasonCount(reason string) int {
	total := 0
	for _, ctl := range s.ctls {
		total += len(ctl.AlertsByReason(reason))
	}
	return total
}

// detectedBy maps the fired alert reasons to defense names, cluster-wide.
func (s *ClusterScenario) detectedBy() []string {
	var out []string
	add := func(name string, reasons ...string) {
		for _, r := range reasons {
			if s.alertReasonCount(r) > 0 {
				out = append(out, name)
				return
			}
		}
	}
	add("TopoGuard", topoguard.ReasonLLDPFromHost, topoguard.ReasonFirstHopFromSwitch,
		topoguard.ReasonMigrationPre, topoguard.ReasonMigrationPost)
	add("CMM", tgplus.ReasonControlMessage)
	add("LLI", tgplus.ReasonAbnormalDelay)
	add("RATEMON", ratemon.ReasonPortFlood)
	return out
}

// mergedProm renders the deterministic merged metrics snapshot.
func (s *ClusterScenario) mergedProm() (string, error) {
	var b strings.Builder
	if err := s.Net.MergedMetrics().Snapshot().WritePrometheus(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// FailoverResult is one clustered failover run. Every field except the
// embedded wall-free surface is deterministic for a fixed seed and
// byte-identical across shard counts and serial/parallel execution.
type FailoverResult struct {
	Seed     int64 `json:"seed"`
	Shards   int   `json:"shards"`
	Parallel bool  `json:"parallel"`

	// Crash-relative virtual-time offsets of the failover span chain.
	ElectionNs      int64 `json:"election_ns"`
	HandoverNs      int64 `json:"handover_ns"`
	ReconvergenceNs int64 `json:"reconvergence_ns"`
	// BlindWindowNs is the LLI divergence window: crash → the winner
	// holds fresh control-RTT estimates for both re-homed switches and
	// can enforce latency verdicts on their links again.
	BlindWindowNs int64 `json:"lli_blind_window_ns"`

	ReplayedLinks int    `json:"replayed_links"`
	ReplayedHosts int    `json:"replayed_hosts"`
	PendingLeaked int    `json:"pending_leaked"`
	FalseAlerts   int    `json:"false_alerts"`
	Links         int    `json:"directed_links"`
	Events        uint64 `json:"events"`

	Timeline []string `json:"timeline"`

	MetricsProm string `json:"-"`
}

// RunFailover executes the headline failover experiment: warm the
// clustered Figure 9 testbed under full TOPOGUARD+, crash replica 1
// (master of switches 3 and 4), and measure the deterministic
// reconvergence — election, role handover, state replay, rediscovery —
// plus the LLI's post-handover blind window, with zero leaked probes
// and zero spurious defense alerts.
func RunFailover(seed int64, shards int, parallel bool) (*FailoverResult, error) {
	s := NewClusterFig9Scenario(seed, shards, TopoGuardPlus(), true)
	defer s.Close()
	s.Net.SetParallel(parallel)

	// Warm: handshakes, discovery over both masters, LLI control
	// baselines, and one cross-partition ping to populate the HTS.
	if err := s.Run(2 * time.Second); err != nil {
		return nil, err
	}
	var answered atomic.Int64
	s.Net.Host(HostClient).ARPPing(s.Net.Host(HostServer).IP(), 5*time.Second,
		func(r dataplane.ProbeResult) {
			if r.Alive {
				answered.Add(1)
			}
		})
	if err := s.Run(38 * time.Second); err != nil {
		return nil, err
	}
	if n := len(s.Cluster.LiveLinks()); n != 6 {
		return nil, fmt.Errorf("cluster warmup discovered %d directed links, want 6", n)
	}
	alertsBefore := s.AlertTotal()

	res := &FailoverResult{Seed: seed, Shards: shards, Parallel: parallel}
	s.Cluster.Crash(1)

	// Watch in fixed 50ms steps: the first step at which the winner's
	// LLI again holds control estimates for both re-homed switches marks
	// the end of the blind window; the failover timeline completes
	// independently. Fixed-step polling keeps the measurement a pure
	// function of virtual time.
	winnerLLI := s.LLI(0)
	res.BlindWindowNs = -1
	const step = 50 * time.Millisecond
	for waited := time.Duration(0); waited <= 30*time.Second; waited += step {
		if res.BlindWindowNs < 0 {
			_, ok3 := winnerLLI.ControlLatency(3)
			_, ok4 := winnerLLI.ControlLatency(4)
			if ok3 && ok4 {
				res.BlindWindowNs = int64(waited)
			}
		}
		if res.BlindWindowNs >= 0 && len(s.Cluster.Timelines()) > 0 {
			break
		}
		if err := s.Run(step); err != nil {
			return nil, err
		}
	}
	tls := s.Cluster.Timelines()
	if len(tls) != 1 {
		return nil, fmt.Errorf("failover did not reconverge within the horizon (timelines=%d)", len(tls))
	}
	if res.BlindWindowNs < 0 {
		return nil, fmt.Errorf("winner LLI never rebuilt control estimates for the re-homed switches")
	}
	tl := tls[0]
	res.ElectionNs = int64(tl.ElectionAt.Sub(tl.CrashAt))
	res.HandoverNs = int64(tl.HandoverAt.Sub(tl.CrashAt))
	res.ReconvergenceNs = int64(tl.Reconvergence())
	res.ReplayedLinks = tl.ReplayedLinks
	res.ReplayedHosts = tl.ReplayedHosts
	res.Timeline = []string{
		"crash +0s",
		fmt.Sprintf("election.start +%v", tl.ElectionAt.Sub(tl.CrashAt)),
		fmt.Sprintf("role.handover +%v", tl.HandoverAt.Sub(tl.CrashAt)),
		fmt.Sprintf("state.replay %d links, %d hosts", tl.ReplayedLinks, tl.ReplayedHosts),
		fmt.Sprintf("rediscovery.done +%v", tl.Reconvergence()),
		fmt.Sprintf("lli.relearned +%v", time.Duration(res.BlindWindowNs)),
	}

	// Drain off a probe-tick phase (the extra 25ms can never land the
	// clock back on the LLI's 2s cadence), then check the invariants.
	if err := s.Run(time.Second + 25*time.Millisecond); err != nil {
		return nil, err
	}
	res.PendingLeaked = s.Cluster.PendingProbeTotal()
	res.FalseAlerts = s.AlertTotal() - alertsBefore
	res.Links = len(s.Replica(0).Links())
	res.Events = s.Net.Group.Executed()
	var err error
	if res.MetricsProm, err = s.mergedProm(); err != nil {
		return nil, err
	}
	return res, nil
}

// PartitionRow is one attack evaluated against the partitioned control
// plane: the same Figure 9 attack, with the two LLDP directions of the
// fabricated link adjudicated by different masters, under replicated or
// isolated controller views.
type PartitionRow struct {
	Attack     string   `json:"attack"`
	Replicated bool     `json:"replicated"`
	Fabricated bool     `json:"fabricated"`
	DetectedBy []string `json:"detected_by"`
	Verdict    Verdict  `json:"verdict"`
}

// PartitionMatrixResult is the partitioned-view attack matrix.
type PartitionMatrixResult struct {
	Seed     int64          `json:"seed"`
	Shards   int            `json:"shards"`
	Parallel bool           `json:"parallel"`
	Rows     []PartitionRow `json:"rows"`

	// MetricsProm concatenates each row's deterministic merged snapshot
	// in row order — the byte-identity surface for the shard sweep.
	MetricsProm string `json:"-"`
}

// RunPartitionedMatrix evaluates the attack matrix under partitioned
// controller views: OOB and in-band port-amnesia link fabrication and
// the two distributed flood variants, each under replicated and
// isolated modes. Expected shape: the CMM survives partitioning through
// the replicated port-status log (and loses the cross-master evidence
// when isolated), the LLI cannot enforce on cross-master links it has
// no control baselines for, and the rate monitor — purely local to each
// master's ingress ports — is indifferent to partitioning.
func RunPartitionedMatrix(seed int64, shards int, parallel bool) (*PartitionMatrixResult, error) {
	res := &PartitionMatrixResult{Seed: seed, Shards: shards, Parallel: parallel}
	var prom strings.Builder
	type rowSpec struct {
		name string
		run  func(rowSeed int64, replicated bool) (PartitionRow, string, error)
	}
	specs := []rowSpec{
		{"OOB port amnesia + link fabrication", func(rs int64, rep bool) (PartitionRow, string, error) {
			return runClusterFabricationRow(rs, shards, parallel, false, rep)
		}},
		{"in-band port amnesia + link fabrication", func(rs int64, rep bool) (PartitionRow, string, error) {
			return runClusterFabricationRow(rs, shards, parallel, true, rep)
		}},
		{"distributed SYN flood (spoofed sources)", func(rs int64, rep bool) (PartitionRow, string, error) {
			return runClusterDoSRow(rs, shards, parallel, attack.SYNFlood, rep)
		}},
		{"distributed link saturation (UDP)", func(rs int64, rep bool) (PartitionRow, string, error) {
			return runClusterDoSRow(rs, shards, parallel, attack.LinkSaturation, rep)
		}},
	}
	for i, sp := range specs {
		for _, replicated := range []bool{true, false} {
			row, rowProm, err := sp.run(seed+int64(i)*101, replicated)
			if err != nil {
				return nil, fmt.Errorf("%s (replicated=%v): %w", sp.name, replicated, err)
			}
			row.Attack = sp.name
			row.Replicated = replicated
			res.Rows = append(res.Rows, row)
			prom.WriteString(rowProm)
		}
	}
	res.MetricsProm = prom.String()
	return res, nil
}

// runClusterFabricationRow runs one link-fabrication attack against the
// partitioned TOPOGUARD+ control plane.
func runClusterFabricationRow(seed int64, shards int, parallel, inband, replicated bool) (PartitionRow, string, error) {
	s := NewClusterFig9Scenario(seed, shards, TopoGuardPlus(), replicated)
	defer s.Close()
	s.Net.SetParallel(parallel)
	// Each replica watches for the fabricated link committing on ITS
	// side: under partitioned views the two directions land on different
	// masters, so both must be observed.
	recs := make([]*linkSeen, 2)
	for i := range recs {
		recs[i] = &linkSeen{want: FabricatedLinkFig9()}
		s.Replica(i).Register(recs[i])
	}
	if err := s.Run(2 * time.Second); err != nil {
		return PartitionRow{}, "", err
	}
	// HOST-profile the attacker ports, as in Figure 1.
	s.Net.Host(HostAttackerA).ARPPing(s.Net.Host(HostClient).IP(), 300*time.Millisecond, func(dataplane.ProbeResult) {})
	s.Net.Host(HostAttackerB).ARPPing(s.Net.Host(HostServer).IP(), 300*time.Millisecond, func(dataplane.ProbeResult) {})
	// Calibration: LLI control baselines on both masters.
	if err := s.Run(62 * time.Second); err != nil {
		return PartitionRow{}, "", err
	}
	alertsBefore := s.AlertTotal()
	if inband {
		fab := attack.NewInBandFabrication(s.Net.ControlKernel(),
			s.Net.Host(HostAttackerA), s.Net.Host(HostAttackerB), 0)
		fab.Start()
	} else {
		fab := attack.NewOOBFabrication(s.Net.ControlKernel(),
			s.Net.Host(HostAttackerA), s.Net.Host(HostAttackerB), s.OOB,
			attack.FabricationConfig{UseAmnesia: true})
		fab.Start()
	}
	if err := s.Run(50 * time.Second); err != nil {
		return PartitionRow{}, "", err
	}
	fabricated := recs[0].count+recs[1].count > 0
	row := PartitionRow{Fabricated: fabricated, DetectedBy: s.detectedBy()}
	alerted := s.AlertTotal() > alertsBefore
	switch {
	case fabricated && !alerted:
		row.Verdict = Undetected
	case fabricated && alerted:
		row.Verdict = Detected
	case alerted:
		row.Verdict = Blocked
	default:
		row.Verdict = Failed
	}
	prom, err := s.mergedProm()
	return row, prom, err
}

// runClusterDoSRow runs one distributed flood against the partitioned
// full stack (TOPOGUARD+ plus per-replica rate monitors).
func runClusterDoSRow(seed int64, shards int, parallel bool, variant attack.DoSVariant, replicated bool) (PartitionRow, string, error) {
	def := FullStack()
	rcfg := DoSRateMonConfig(variant)
	def.RateMonConfig = &rcfg
	s := NewClusterFig9Scenario(seed, shards, def, replicated)
	defer s.Close()
	s.Net.SetParallel(parallel)
	if err := s.Run(2 * time.Second); err != nil {
		return PartitionRow{}, "", err
	}
	victim := s.Net.Host(HostServer)
	attackers := []*dataplane.Host{s.Net.Host(HostAttackerA), s.Net.Host(HostAttackerB)}
	for _, a := range attackers {
		a.ARPPing(victim.IP(), time.Second, func(dataplane.ProbeResult) {})
	}
	if err := s.Run(2 * time.Second); err != nil {
		return PartitionRow{}, "", err
	}
	cfg := attack.DoSConfig{Variant: variant, Seed: seed}
	if variant == attack.SYNFlood {
		cfg.PacketsPerSec = 2500
	} else {
		cfg.PacketsPerSec = 1000
	}
	flood := attack.NewDoS(attackers, victim.MAC(), victim.IP(), cfg)
	flood.Announce()
	if err := s.Run(time.Second); err != nil {
		return PartitionRow{}, "", err
	}
	rxBefore := victim.RxFrames()
	flood.Start()
	if err := s.Run(8 * time.Second); err != nil {
		return PartitionRow{}, "", err
	}
	flood.Stop()
	if err := s.Run(time.Second); err != nil {
		return PartitionRow{}, "", err
	}
	delivered := float64(victim.RxFrames()-rxBefore) / float64(flood.PacketsSent())
	alerted := s.alertReasonCount(ratemon.ReasonPortFlood) > 0
	row := PartitionRow{Fabricated: false, DetectedBy: s.detectedBy()}
	switch {
	case !alerted && delivered > 0.9:
		row.Verdict = Undetected
	case alerted && delivered < 0.7:
		row.Verdict = Blocked
	case alerted:
		row.Verdict = Detected
	default:
		row.Verdict = Failed
	}
	prom, err := s.mergedProm()
	return row, prom, err
}
