package core

import (
	"time"

	"sdntamper/internal/attack"
	"sdntamper/internal/controller"
	"sdntamper/internal/exp"
)

// DowntimeWindowRow reports, for one victim-downtime duration, how often
// the port-probing hijack completes inside the window and how much of
// the window remains for the attacker to exploit (Section IV-B2's
// analysis: seconds-scale live-migration windows vs minutes-to-hours
// maintenance windows).
type DowntimeWindowRow struct {
	Window         time.Duration
	Runs           int
	CompletedIn    int
	SuccessRate    float64
	MeanUsable     time.Duration // window minus completion time, successful runs
	UsableFraction float64
}

// RunDowntimeWindows post-processes hijack completion times against
// candidate migration windows. withToolOverhead selects the attack cost
// model as in RunHijackDistributions.
func RunDowntimeWindows(seed int64, runs int, withToolOverhead bool, windows []time.Duration) ([]DowntimeWindowRow, error) {
	if len(windows) == 0 {
		windows = []time.Duration{500 * time.Millisecond, time.Second, 3 * time.Second, 10 * time.Second, time.Minute}
	}
	d, err := RunHijackDistributionsParallel(seed, runs, withToolOverhead, 0)
	if err != nil {
		return nil, err
	}
	completions := d.ControllerAck.Samples()
	rows := make([]DowntimeWindowRow, 0, len(windows))
	for _, w := range windows {
		row := DowntimeWindowRow{Window: w, Runs: len(completions) + d.Failed}
		var usable time.Duration
		for _, c := range completions {
			if c <= w {
				row.CompletedIn++
				usable += w - c
			}
		}
		if row.Runs > 0 {
			row.SuccessRate = float64(row.CompletedIn) / float64(row.Runs)
		}
		if row.CompletedIn > 0 {
			row.MeanUsable = usable / time.Duration(row.CompletedIn)
			row.UsableFraction = float64(row.MeanUsable) / float64(w)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ProfileSweepRow reports how one controller profile's timing constants
// (Table III) shape the fabrication attack: how quickly a relayed link
// enters the topology, and how long a dead one lingers.
type ProfileSweepRow struct {
	Controller string
	// TimeToFabricate is from relay start to the link entering topology.
	TimeToFabricate time.Duration
	// LingerAfterStop is from relay stop to the link's eviction.
	LingerAfterStop time.Duration
}

// RunProfileSweep runs the OOB fabrication attack under each controller
// profile from Table III. Shorter discovery intervals hand the attacker a
// fresher relay supply (faster fabrication) but also evict the forged
// link sooner once relaying stops. Profiles run as independent trials on
// the executor; row order follows Table III regardless of scheduling.
func RunProfileSweep(seed int64) ([]ProfileSweepRow, error) {
	return exp.Grid(controller.Profiles(), 0, func(prof controller.Profile) (ProfileSweepRow, error) {
		return runOneProfile(seed, prof)
	})
}

func runOneProfile(seed int64, prof controller.Profile) (ProfileSweepRow, error) {
	row := ProfileSweepRow{Controller: prof.Name}
	s := NewFig9Testbed(seed, NoDefenses(), controller.WithProfile(prof))
	defer s.Close()
	if err := s.Run(2 * time.Second); err != nil {
		return row, err
	}
	a := s.Net.Host(HostAttackerA)
	b := s.Net.Host(HostAttackerB)
	fab := attack.NewOOBFabrication(s.Net.Kernel, a, b, s.OOB,
		attack.FabricationConfig{UseAmnesia: true, SettleDelay: 100 * time.Millisecond})
	start := s.Net.Kernel.Now()
	fab.Start()

	fabricatedAt, err := runUntil(s, 3*prof.DiscoveryInterval+5*time.Second, func() bool {
		return s.Controller().HasLink(FabricatedLinkFig9())
	})
	if err != nil {
		return row, err
	}
	if fabricatedAt.IsZero() {
		row.TimeToFabricate = -1
		return row, nil
	}
	row.TimeToFabricate = fabricatedAt.Sub(start)

	// Stand down and watch the link age out.
	a.OnFrame = nil
	b.OnFrame = nil
	stopAt := s.Net.Kernel.Now()
	evictedAt, err := runUntil(s, prof.LinkTimeout+prof.DiscoveryInterval+5*time.Second, func() bool {
		return !s.Controller().HasLink(FabricatedLinkFig9()) &&
			!s.Controller().HasLink(FabricatedLinkFig9().Reverse())
	})
	if err != nil {
		return row, err
	}
	if evictedAt.IsZero() {
		row.LingerAfterStop = -1
		return row, nil
	}
	row.LingerAfterStop = evictedAt.Sub(stopAt)
	return row, nil
}

// runUntil advances the scenario in small steps until cond holds or the
// budget is exhausted, returning the virtual time at which cond first
// held (zero if never).
func runUntil(s *Scenario, budget time.Duration, cond func() bool) (time.Time, error) {
	const step = 250 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < budget; elapsed += step {
		if cond() {
			return s.Net.Kernel.Now(), nil
		}
		if err := s.Run(step); err != nil {
			return time.Time{}, err
		}
	}
	if cond() {
		return s.Net.Kernel.Now(), nil
	}
	return time.Time{}, nil
}
