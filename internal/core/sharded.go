package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"sdntamper/internal/controller"
	"sdntamper/internal/dataplane"
	"sdntamper/internal/netsim"
	"sdntamper/internal/obs/trace"
	"sdntamper/internal/ratemon"
	"sdntamper/internal/tgplus"
)

// ShardedScenario is a fat-tree scenario partitioned across shard
// kernels: the sharded counterpart of Scenario for scale experiments.
type ShardedScenario struct {
	Net *netsim.ShardedNetwork
	Def Defenses

	modules defenseModules
}

// NewShardedFatTreeScenario builds a k-ary fat-tree under the selected
// defenses on a sharded network: controller and core tier on shard 0,
// pods dealt round-robin over the remaining shards. shards == 1 is the
// serial reference configuration; every shard count produces the same
// simulation (see TestShardedByteIdentical).
func NewShardedFatTreeScenario(seed int64, k, shards int, def Defenses, ctlOpts ...controller.Option) (*ShardedScenario, *netsim.FatTreeTopology) {
	opts := defenseOptions(def, ctlOpts)
	net := netsim.NewSharded(seed, shards, netsim.FatTreePartition(k, shards), opts...)
	topo := netsim.BuildFatTreeOn(net, k, netsim.TestbedTrunkLatency(), testbedHostLink())
	s := &ShardedScenario{Net: net, Def: def}
	s.modules = deployDefenses(net.Controller, def)
	return s, topo
}

// Run advances the scenario's virtual clock across all shards.
func (s *ShardedScenario) Run(d time.Duration) error { return s.Net.Run(d) }

// Close stops background tickers.
func (s *ShardedScenario) Close() {
	if s.modules.Sphinx != nil {
		s.modules.Sphinx.Stop()
	}
	if s.modules.LLI != nil {
		s.modules.LLI.Stop()
	}
	if s.modules.RateMon != nil {
		s.modules.RateMon.Stop()
	}
	s.Net.Shutdown()
}

// RateMon exposes the deployed rate monitor (nil when not selected).
func (s *ShardedScenario) RateMon() *ratemon.Monitor { return s.modules.RateMon }

// ShardedScaleResult summarizes one sharded fat-tree scale run. All
// fields except Wall and ShardEvents are deterministic for a fixed seed
// and identical across shard counts and serial/parallel execution;
// ShardEvents is deterministic per shard count (execution geometry), and
// Wall is the only wall-clock quantity.
type ShardedScaleResult struct {
	K             int
	Shards        int
	Parallel      bool
	Switches      int
	Hosts         int
	Trunks        int
	CrossTrunks   int           // trunks paying the cross-shard mailbox path
	Lookahead     time.Duration // conservative epoch stride
	DirectedLinks int
	LLIAlerts     int // abnormal-delay false positives (IQR fence tail, grows with k)
	PingsSent     int
	PingsAnswered int
	Rounds        int
	Events        uint64        // total executed events (shard-count invariant)
	ShardEvents   []uint64      // per-shard executed events (geometry)
	VirtualTime   time.Duration // simulated span
	Wall          time.Duration // host wall-clock cost (non-deterministic)
	MetricsProm   string        // merged per-shard registries, Prometheus text
	HealthProm    string        // per-shard execution-geometry gauges (NOT shard-count invariant)

	// Trace capture (only under RunShardedScaleTraced; zero otherwise).
	// Spans is the canonical merged stream; SpansDropped counts ring
	// overwrites, which must be zero for the stream to be shard-count
	// invariant; ShardSpans counts the spans each shard's own recorder
	// retained (execution geometry, like ShardEvents).
	Spans        []trace.Span
	SpansDropped uint64
	ShardSpans   []int
}

// RunShardedScale builds a k-ary fat-tree under TOPOGUARD+ on the given
// shard count, lets discovery converge, warms cross-pod paths with ARP
// pings from every even-indexed host, then runs `rounds` unicast ping
// rounds one virtual second apart — inside the controller's 5 s flow
// idle timeout, so warmed rounds ride installed flows entirely on the
// dataplane (pod shards), the workload the sharded kernel parallelizes.
func RunShardedScale(seed int64, k, shards int, parallel bool, rounds int) (*ShardedScaleResult, error) {
	return runShardedScale(seed, k, shards, parallel, rounds, false)
}

// RunShardedScaleTraced is RunShardedScale with per-shard span flight
// recorders enabled for the whole run; the result carries the merged
// canonical span stream, which is byte-identical across shard counts as
// long as SpansDropped is zero.
func RunShardedScaleTraced(seed int64, k, shards int, parallel bool, rounds int) (*ShardedScaleResult, error) {
	return runShardedScale(seed, k, shards, parallel, rounds, true)
}

func runShardedScale(seed int64, k, shards int, parallel bool, rounds int, traced bool) (*ShardedScaleResult, error) {
	wallStart := time.Now()
	s, topo := NewShardedFatTreeScenario(seed, k, shards, TopoGuardPlus())
	defer s.Close()
	s.Net.SetParallel(parallel)
	if traced {
		s.Net.EnableTrace(0)
	}

	res := &ShardedScaleResult{
		K:           k,
		Shards:      shards,
		Parallel:    parallel,
		Switches:    topo.Switches(),
		Hosts:       topo.Hosts(),
		Trunks:      len(s.Net.Trunks()),
		CrossTrunks: s.Net.CrossShardTrunks(),
		Lookahead:   s.Net.Group.Lookahead(),
		Rounds:      rounds,
	}

	// Let handshakes, discovery rounds and LLI baselines settle.
	if err := s.Run(30 * time.Second); err != nil {
		return nil, err
	}

	// Warm round: cross-pod ARP resolution installs reactive flows.
	// Probe callbacks fire on the destination host's shard goroutine
	// under parallel execution, so the tally must be atomic.
	var answered atomic.Int64
	onProbe := func(r dataplane.ProbeResult) {
		if r.Alive {
			answered.Add(1)
		}
	}
	hosts := topo.HostNames
	pair := func(i int) (*dataplane.Host, *dataplane.Host) {
		return s.Net.Host(hosts[i]), s.Net.Host(hosts[(i+len(hosts)/2)%len(hosts)])
	}
	for i := 0; i < len(hosts); i += 2 {
		src, dst := pair(i)
		res.PingsSent++
		src.ARPPing(dst.IP(), 5*time.Second, onProbe)
	}
	if err := s.Run(10 * time.Second); err != nil {
		return nil, err
	}

	// Steady-state rounds: unicast pings on installed flows.
	for round := 0; round < rounds; round++ {
		for i := 0; i < len(hosts); i += 2 {
			src, dst := pair(i)
			res.PingsSent++
			src.Ping(dst.MAC(), dst.IP(), 5*time.Second, onProbe)
		}
		if err := s.Run(time.Second); err != nil {
			return nil, err
		}
	}
	// Drain the final round's probes.
	if err := s.Run(10 * time.Second); err != nil {
		return nil, err
	}

	res.PingsAnswered = int(answered.Load())
	res.DirectedLinks = len(s.Net.Controller.Links())
	res.LLIAlerts = len(s.Net.Controller.AlertsByReason(tgplus.ReasonAbnormalDelay))
	// Complete discovery, modulo the LLI's IQR fence: at thousands of
	// burst-latency measurements per round the fence's tail guarantees a
	// few false positives, each of which blocks one link refresh and is
	// recorded as an alert. Every missing directed link must be accounted
	// for by such an alert; an unexplained gap is a real discovery failure.
	if want := 2 * res.Trunks; want-res.DirectedLinks > res.LLIAlerts {
		return nil, fmt.Errorf("k=%d shards=%d: discovered %d directed links, want %d (only %d LLI alerts)",
			k, shards, res.DirectedLinks, want, res.LLIAlerts)
	}
	res.Events = s.Net.Group.Executed()
	for i := 0; i < shards; i++ {
		res.ShardEvents = append(res.ShardEvents, s.Net.ShardExecuted(i))
	}
	res.VirtualTime = 50*time.Second + time.Duration(rounds)*time.Second
	res.Wall = time.Since(wallStart)

	var b strings.Builder
	if err := s.Net.MergedMetrics().Snapshot().WritePrometheus(&b); err != nil {
		return nil, err
	}
	res.MetricsProm = b.String()
	var hb strings.Builder
	if err := s.Net.HealthMetrics().Snapshot().WritePrometheus(&hb); err != nil {
		return nil, err
	}
	res.HealthProm = hb.String()
	if traced {
		res.Spans = s.Net.MergedSpans()
		for i := 0; i < shards; i++ {
			tr := s.Net.ShardTracer(i)
			res.SpansDropped += tr.Dropped()
			res.ShardSpans = append(res.ShardSpans, len(tr.Spans()))
		}
	}
	return res, nil
}
