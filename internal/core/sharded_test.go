package core

import (
	"testing"
)

// TestShardedByteIdentical is the equivalence gate for the sharded
// kernel: the same k=4 fat-tree trial under TOPOGUARD+ must produce
// byte-identical merged metrics snapshots — and identical ping and
// discovery outcomes — at 1 shard (the serial reference), 2 shards, 5
// shards (every pod on its own kernel), and with parallel epoch
// execution at 5 shards.
func TestShardedByteIdentical(t *testing.T) {
	const seed, k, rounds = 424242, 4, 2

	type config struct {
		name     string
		shards   int
		parallel bool
	}
	configs := []config{
		{"serial-1shard", 1, false},
		{"2shards", 2, false},
		{"5shards", 5, false},
		{"5shards-parallel", 5, true},
	}

	var ref *ShardedScaleResult
	for _, cfg := range configs {
		res, err := RunShardedScale(seed, k, cfg.shards, cfg.parallel, rounds)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if res.PingsAnswered != res.PingsSent {
			t.Fatalf("%s: %d of %d pings answered", cfg.name, res.PingsAnswered, res.PingsSent)
		}
		if cfg.shards > 1 {
			// The equivalence must be earned: pod↔core trunks and pod
			// control channels really cross shards, and every shard
			// executes a share of the events.
			if res.CrossTrunks == 0 {
				t.Fatalf("%s: no cross-shard trunks", cfg.name)
			}
			for i, n := range res.ShardEvents {
				if n == 0 {
					t.Fatalf("%s: shard %d executed no events", cfg.name, i)
				}
			}
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Events != ref.Events {
			t.Errorf("%s: executed %d events, reference %d", cfg.name, res.Events, ref.Events)
		}
		if res.DirectedLinks != ref.DirectedLinks {
			t.Errorf("%s: %d directed links, reference %d", cfg.name, res.DirectedLinks, ref.DirectedLinks)
		}
		if res.LLIAlerts != ref.LLIAlerts {
			t.Errorf("%s: %d LLI alerts, reference %d", cfg.name, res.LLIAlerts, ref.LLIAlerts)
		}
		if res.PingsAnswered != ref.PingsAnswered {
			t.Errorf("%s: %d pings answered, reference %d", cfg.name, res.PingsAnswered, ref.PingsAnswered)
		}
		if res.MetricsProm != ref.MetricsProm {
			t.Errorf("%s: merged metrics snapshot diverges from serial reference (%d vs %d bytes)",
				cfg.name, len(res.MetricsProm), len(ref.MetricsProm))
			diffFirstLine(t, ref.MetricsProm, res.MetricsProm)
		}
	}
	if ref != nil && ref.MetricsProm == "" {
		t.Fatal("reference snapshot is empty")
	}
}

// diffFirstLine reports the first diverging snapshot line, for debugging
// without dumping two full exports.
func diffFirstLine(t *testing.T, a, b string) {
	t.Helper()
	la, lb := splitLines(a), splitLines(b)
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			t.Logf("first divergence at line %d:\n  ref: %s\n  got: %s", i+1, la[i], lb[i])
			return
		}
	}
	t.Logf("snapshots diverge in length: %d vs %d lines", len(la), len(lb))
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
