package core

import (
	"fmt"
	"testing"
	"time"

	"sdntamper/internal/dataplane"
	"sdntamper/internal/packet"
	"sdntamper/internal/sim"
)

// buildRing assembles a ring of n switches (a cyclic topology: the
// broadcast-storm worst case) with one host per switch.
func buildRing(t *testing.T, n int, def Defenses) *Scenario {
	t.Helper()
	s := newScenario(13, def)
	t.Cleanup(s.Close)
	for dpid := uint64(1); dpid <= uint64(n); dpid++ {
		s.Net.AddSwitch(dpid, nil)
	}
	for dpid := uint64(1); dpid <= uint64(n); dpid++ {
		next := dpid%uint64(n) + 1
		s.Net.AddTrunk(dpid, 3, next, 4, sim.Const(2*time.Millisecond))
	}
	for dpid := uint64(1); dpid <= uint64(n); dpid++ {
		s.Net.AddHost(fmt.Sprintf("h%d", dpid),
			fmt.Sprintf("aa:aa:aa:aa:aa:%02x", dpid),
			fmt.Sprintf("10.0.1.%d", dpid),
			dpid, 1, sim.Const(time.Millisecond))
	}
	s.deploy()
	return s
}

func TestRingTopologyDiscovery(t *testing.T) {
	const n = 10
	s := buildRing(t, n, TopoGuardPlus())
	if err := s.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// n trunk segments, both directions each.
	if got := len(s.Controller().Links()); got != 2*n {
		t.Fatalf("links = %d, want %d", got, 2*n)
	}
}

func TestRingBroadcastNoStorm(t *testing.T) {
	const n = 10
	s := buildRing(t, n, TopoGuardPlus())
	if err := s.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	before := s.Net.Kernel.Executed()
	rxBefore := make(map[string]uint64, n)
	for dpid := 1; dpid <= n; dpid++ {
		name := fmt.Sprintf("h%d", dpid)
		rxBefore[name] = s.Net.Host(name).RxFrames()
	}
	// One broadcast into a cyclic topology: naive dataplane flooding
	// would circulate forever; controller-managed access-port flooding
	// delivers exactly one copy per host and terminates. (Hosts also
	// receive periodic LLDP probes, hence the per-host deltas.)
	s.Net.Host("h1").SendUDP(packet.BroadcastMAC, packet.MustIPv4("10.0.1.255"), 1, 2, []byte("anyone"))
	if err := s.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	delta := s.Net.Kernel.Executed() - before
	if delta > 2000 {
		t.Fatalf("broadcast cost %d events: storming", delta)
	}
	for dpid := 2; dpid <= n; dpid++ {
		name := fmt.Sprintf("h%d", dpid)
		if got := s.Net.Host(name).RxFrames() - rxBefore[name]; got != 1 {
			t.Fatalf("%s received %d copies, want exactly 1", name, got)
		}
	}
	if got := s.Net.Host("h1").RxFrames() - rxBefore["h1"]; got != 0 {
		t.Fatalf("broadcast echoed to its origin (%d frames)", got)
	}
}

func TestRingCrossPing(t *testing.T) {
	const n = 10
	s := buildRing(t, n, TopoGuardPlus())
	if err := s.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	h1 := s.Net.Host("h1")
	h6 := s.Net.Host("h6") // diametrically opposite: 5 hops either way
	var arpOK, pingOK bool
	h1.ARPPing(h6.IP(), time.Second, func(r dataplane.ProbeResult) { arpOK = r.Alive })
	if err := s.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !arpOK {
		t.Fatal("ARP across the ring failed")
	}
	h1.Ping(h6.MAC(), h6.IP(), time.Second, func(r dataplane.ProbeResult) { pingOK = r.Alive })
	if err := s.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !pingOK {
		t.Fatal("ping across the ring failed")
	}
	path, ok := s.Controller().PathBetweenHosts(h1.MAC(), h6.MAC())
	if !ok || len(path) != 6 {
		t.Fatalf("path = %v, want 6 switches (5 hops)", path)
	}
	// No defense alerts on a healthy ring.
	if alerts := s.Controller().Alerts(); len(alerts) != 0 {
		t.Fatalf("healthy ring alerted: %v", alerts)
	}
}

func TestRingScalesTo40Switches(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	const n = 40
	s := buildRing(t, n, TopoGuardPlus())
	if err := s.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Controller().Links()); got != 2*n {
		t.Fatalf("links = %d, want %d", got, 2*n)
	}
	h1 := s.Net.Host("h1")
	far := s.Net.Host("h21")
	var ok bool
	h1.ARPPing(far.IP(), 2*time.Second, func(r dataplane.ProbeResult) { ok = r.Alive })
	if err := s.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("20-hop ARP failed")
	}
}
