package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"sdntamper/internal/controller"
	"sdntamper/internal/sim"
)

// Tests of the discovery-protocol dimension: sOFTDP's debounce and
// session invariants under port churn, Resume after Shutdown with
// event-driven discovery active, the deterministic OFDP stagger option,
// and the sharded byte-identity of the sOFTDP churn scenario.

// fig9Links is the directed link count of the Figure 9 testbed
// (3 trunks, both directions).
const fig9Links = 6

func newSOFTDPFig9(t *testing.T, seed int64) *Scenario {
	t.Helper()
	s := NewFig9Testbed(seed, NoDefenses(), softdpOpt())
	t.Cleanup(s.Close)
	if err := s.Run(45 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Controller().Links()); got != fig9Links {
		t.Fatalf("discovered %d directed links after settle, want %d", got, fig9Links)
	}
	return s
}

// TestSOFTDPFlapNoDuplicateSessions drives a host interface through two
// flap storms — multiple transitions inside one debounce window — and
// asserts the storm collapses to debounced probing without duplicating
// any BFD session or leaking an armed debounce timer.
func TestSOFTDPFlapNoDuplicateSessions(t *testing.T) {
	s := newSOFTDPFig9(t, 21)
	mgr := s.Controller().SOFTDPManager()
	if mgr == nil {
		t.Fatal("no sOFTDP manager on a sOFTDP-profile controller")
	}
	if got := mgr.SessionCount(); got != fig9Links {
		t.Fatalf("SessionCount = %d after settle, want %d", got, fig9Links)
	}

	host := s.Net.Host(HostAttackerA)
	flapStorm := func() {
		// Three transitions inside the 100 ms debounce window, then a
		// settle long enough for the armed probe to fire and drain.
		host.InterfaceDown()
		if err := s.Run(20 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		host.InterfaceUp()
		if err := s.Run(20 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		host.InterfaceDown()
		if err := s.Run(20 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		host.InterfaceUp()
		if err := s.Run(2 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	flapStorm()
	flapStorm()

	if got := mgr.SessionCount(); got != fig9Links {
		t.Errorf("SessionCount = %d after flap storms, want %d (host churn must not mint sessions)",
			got, fig9Links)
	}
	if got := s.Controller().BFDSessionCount(); got != fig9Links {
		t.Errorf("bfd_sessions gauge = %d, want %d", got, fig9Links)
	}
	pending := s.Controller().PendingProbes()
	if pending.Discovery != 0 {
		t.Errorf("armed debounce probes leaked after drain: %d", pending.Discovery)
	}
	if got := len(s.Controller().Links()); got != fig9Links {
		t.Errorf("topology has %d directed links after flap storms, want %d", got, fig9Links)
	}
}

// TestSOFTDPResumeAfterShutdown shuts the controller's discovery
// machinery down mid-run and resumes it: while stopped no probe leaves
// and no link is evicted (sessions are retained, timers cancelled);
// after Resume the retained sessions re-arm and refresh probing picks
// back up without losing the topology.
func TestSOFTDPResumeAfterShutdown(t *testing.T) {
	s := newSOFTDPFig9(t, 22)
	ctl := s.Controller()

	ctl.Shutdown()
	probes0, _ := ctl.DiscoveryStats()
	if err := s.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if probes1, _ := ctl.DiscoveryStats(); probes1 != probes0 {
		t.Errorf("probes advanced %d -> %d while shut down", probes0, probes1)
	}
	if got := len(ctl.Links()); got != fig9Links {
		t.Errorf("links = %d while shut down, want %d (no timers, no evictions)", got, fig9Links)
	}

	ctl.Resume()
	// The longest refresh interval a retained session can hold is the
	// 150 s backoff cap (plus jitter), so 200 s guarantees every session
	// refreshes at least once after re-arming.
	if err := s.Run(200 * time.Second); err != nil {
		t.Fatal(err)
	}
	if probes2, _ := ctl.DiscoveryStats(); probes2 <= probes0 {
		t.Errorf("probes static at %d after Resume, want growth", probes2)
	}
	if got := len(ctl.Links()); got != fig9Links {
		t.Errorf("links = %d after Resume, want %d", got, fig9Links)
	}
	if got := ctl.SOFTDPManager().SessionCount(); got != fig9Links {
		t.Errorf("SessionCount = %d after Resume, want %d", got, fig9Links)
	}
	if pending := ctl.PendingProbes(); pending.Discovery != 0 {
		t.Errorf("armed debounce probes leaked after Resume: %d", pending.Discovery)
	}
}

// lldpSendRecorder captures the controller's LLDP emission timeline.
type lldpSendRecorder struct {
	events []string
}

func (r *lldpSendRecorder) ModuleName() string { return "test/lldp-send-recorder" }

func (r *lldpSendRecorder) ObserveLLDPSend(ev *controller.LLDPSendEvent) {
	r.events = append(r.events, fmt.Sprintf("%d:%d@%d",
		ev.Origin.DPID, ev.Origin.Port, ev.SentAt.Sub(sim.Epoch)))
}

// TestOFDPStaggerDeterministic exercises the opt-in OFDP stagger: the
// staggered emission timeline is a pure function of the seed (two runs
// match event for event), actually differs from the default same-instant
// burst schedule, and still converges on the full topology.
func TestOFDPStaggerDeterministic(t *testing.T) {
	run := func(seed int64, stagger bool) []string {
		var opts []controller.Option
		if stagger {
			p := controller.Floodlight
			p.DiscoveryStagger = true
			opts = append(opts, controller.WithProfile(p))
		}
		s := NewFig9Testbed(seed, NoDefenses(), opts...)
		defer s.Close()
		rec := &lldpSendRecorder{}
		s.Controller().Register(rec)
		if err := s.Run(40 * time.Second); err != nil {
			t.Fatal(err)
		}
		if got := len(s.Controller().Links()); got != fig9Links {
			t.Fatalf("stagger=%v: %d directed links, want %d", stagger, got, fig9Links)
		}
		return rec.events
	}

	staggered1 := run(7, true)
	staggered2 := run(7, true)
	if a, b := strings.Join(staggered1, "\n"), strings.Join(staggered2, "\n"); a != b {
		t.Fatalf("same-seed staggered timelines diverge:\n--- run1 ---\n%s\n--- run2 ---\n%s", a, b)
	}
	burst := run(7, false)
	if strings.Join(staggered1, "\n") == strings.Join(burst, "\n") {
		t.Fatal("staggered timeline identical to the default burst schedule — stagger had no effect")
	}
}

// TestSOFTDPShardedByteIdentical runs the churn-heavy sOFTDP scenario
// across the full shard/parallel sweep and asserts every configuration
// reproduces the serial reference fingerprint with zero leaked probes —
// the gate that keeps event-driven discovery inside the sharded kernel's
// equivalence guarantee.
func TestSOFTDPShardedByteIdentical(t *testing.T) {
	rows, err := RunDiscoveryByteIdentity(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(discoveryIdentityConfigs) {
		t.Fatalf("ran %d configurations, want %d", len(rows), len(discoveryIdentityConfigs))
	}
	for _, r := range rows {
		if r.Leaked != 0 {
			t.Errorf("shards=%d parallel=%v: %d pending probes leaked", r.Shards, r.Parallel, r.Leaked)
		}
		if r.Fingerprint != rows[0].Fingerprint {
			t.Errorf("shards=%d parallel=%v: fingerprint diverges from serial reference", r.Shards, r.Parallel)
		}
	}
}
