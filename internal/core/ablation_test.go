package core

import (
	"testing"
	"time"
)

func TestLLIAblationMultiplierTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := RunLLIAblation(50, []float64{1.5, 3}, []int{100}, 4*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var tight, paper LLIAblationRow
	for _, r := range rows {
		switch r.IQRMultiplier {
		case 1.5:
			tight = r
		case 3:
			paper = r
		}
	}
	if !tight.Detected || !paper.Detected {
		t.Fatalf("both configurations must catch the 20ms OOB link: %+v", rows)
	}
	// The tighter fence tends to produce more false positives. The runs
	// are not sample-paired (flagged samples alter each run's window
	// evolution), so allow small-count noise.
	if tight.FalsePositives+3 < paper.FalsePositives {
		t.Fatalf("k=1.5 FPs (%d) far below k=3 FPs (%d)", tight.FalsePositives, paper.FalsePositives)
	}
	// Section VIII-A: even with false positives, benign links survive
	// because the link timeout exceeds the probe interval 2-3x.
	if !paper.BenignLinksIntact {
		t.Fatal("paper configuration lost a benign trunk")
	}
	if paper.BenignSamples == 0 {
		t.Fatal("no benign measurements recorded")
	}
}

func TestControlAveragingReducesVariance(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rows, err := RunControlAveragingAblation(51, []int{1, 9}, 3*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	one, nine := rows[0], rows[1]
	if one.ControlSamples != 1 || nine.ControlSamples != 9 {
		t.Fatalf("rows out of order: %+v", rows)
	}
	for _, r := range rows {
		if r.LatencyMean < 3*time.Millisecond || r.LatencyMean > 8*time.Millisecond {
			t.Fatalf("depth %d: mean %v implausible", r.ControlSamples, r.LatencyMean)
		}
	}
	// Deeper averaging must not materially increase estimator spread.
	if nine.LatencyStd > one.LatencyStd+time.Millisecond {
		t.Fatalf("9-sample averaging noisier than 1-sample: %v vs %v", nine.LatencyStd, one.LatencyStd)
	}
}
