package core

import (
	"time"

	"sdntamper/internal/exp"
)

// hijackOutcome is one trial's contribution to the Figure 5-8 aggregates.
type hijackOutcome struct {
	run     *hijackRun
	timeout time.Duration
}

// RunHijackDistributionsParallel is RunHijackDistributions spread across
// worker goroutines: each attack run owns a private simulation kernel, so
// runs are embarrassingly parallel, and the executor merges results in
// seed order, making the aggregates identical to the sequential version
// regardless of scheduling. workers <= 0 uses one worker per CPU;
// workers == 1 runs inline on the calling goroutine (the serial path).
func RunHijackDistributionsParallel(seed int64, runs int, withToolOverhead bool, workers int) (*HijackDistributions, error) {
	if runs <= 0 {
		runs = 100
	}
	results, err := exp.Run(exp.Seeds(seed, runs, hijackSeedStride), workers,
		func(s int64) (hijackOutcome, error) {
			run, timeout, err := runOneHijack(s, withToolOverhead)
			return hijackOutcome{run: run, timeout: timeout}, err
		})
	if err != nil {
		return nil, err
	}
	out := &HijackDistributions{}
	for _, o := range results {
		out.merge(o)
	}
	return out, nil
}
