package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// RunHijackDistributionsParallel is RunHijackDistributions spread across
// worker goroutines: each attack run owns a private simulation kernel, so
// runs are embarrassingly parallel and results (keyed by per-run seeds)
// are identical to the sequential version regardless of scheduling.
func RunHijackDistributionsParallel(seed int64, runs int, withToolOverhead bool, workers int) (*HijackDistributions, error) {
	if runs <= 0 {
		runs = 100
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}

	type outcome struct {
		run     *hijackRun
		timeout time.Duration
		err     error
	}
	results := make([]outcome, runs)
	jobs := make(chan int)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				run, timeout, err := runOneHijack(seed+int64(i)*7919, withToolOverhead)
				results[i] = outcome{run: run, timeout: timeout, err: err}
			}
		}()
	}
	for i := 0; i < runs; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Merge in run order so the aggregate series are deterministic.
	out := &HijackDistributions{}
	for i, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("run %d: %w", i, r.err)
		}
		if r.run == nil {
			out.Failed++
			continue
		}
		down := r.run.victimDown
		out.LastPingStart.Add(r.run.timeline.LastPingStart.Sub(down))
		out.KnownOffline.Add(r.run.timeline.KnownOffline.Sub(down))
		out.AttackerUp.Add(r.run.timeline.IdentityChanged.Sub(down))
		out.ControllerAck.Add(r.run.timeline.ControllerAck.Sub(down))
		out.IdentityChange.Add(r.run.timeline.IdentityChangeTook)
		out.ProbeTimeouts.Add(r.timeout)
	}
	return out, nil
}
