// Package controllertest provides a scriptable fake of controller.API for
// unit-testing security modules in isolation from the full simulation.
package controllertest

import (
	"math/rand"
	"time"

	"sdntamper/internal/controller"
	"sdntamper/internal/lldp"
	"sdntamper/internal/obs"
	"sdntamper/internal/openflow"
	"sdntamper/internal/packet"
	"sdntamper/internal/sim"
)

// FakeAPI implements controller.API with in-memory state the test
// manipulates directly.
type FakeAPI struct {
	Kernel *sim.Kernel
	Reg    *obs.Registry

	AlertsRaised []controller.Alert
	HostTable    map[packet.MAC]controller.HostEntry
	LinkSet      map[controller.PortRef]bool
	LinkList     []controller.Link
	SwitchIDs    []uint64
	Keys         *lldp.Keychain
	Prof         controller.Profile

	// ProbeReachable scripts ProbeHost results per location.
	ProbeReachable map[controller.PortRef]bool
	// ProbeDelay is the simulated probe round trip.
	ProbeDelay time.Duration
	// ControlRTTs scripts MeasureControlRTT per switch.
	ControlRTTs map[uint64]time.Duration
	// Restored records RestoreHostLocation calls.
	Restored []struct {
		MAC packet.MAC
		Loc controller.PortRef
	}
	// RemovedLinks records RemoveLink calls.
	RemovedLinks []controller.Link
	// FlowStatsByDPID scripts RequestFlowStats replies.
	FlowStatsByDPID map[uint64][]openflow.FlowStats
	// PortStatsByDPID scripts RequestPortStats replies. A dpid absent
	// from the map means "no answer": RequestPortStatsFor delivers nil,
	// like a disconnected switch.
	PortStatsByDPID map[uint64][]openflow.PortStats
	// FlowMods records PushFlowMod calls in order.
	FlowMods []PushedFlowMod
}

// PushedFlowMod is one recorded PushFlowMod call.
type PushedFlowMod struct {
	DPID uint64
	FM   openflow.FlowMod
}

var _ controller.API = (*FakeAPI)(nil)

// New creates a fake with empty state on a fresh kernel.
func New() *FakeAPI {
	return &FakeAPI{
		Kernel:          sim.New(),
		Reg:             obs.NewRegistry(),
		HostTable:       make(map[packet.MAC]controller.HostEntry),
		LinkSet:         make(map[controller.PortRef]bool),
		Prof:            controller.Floodlight,
		ProbeReachable:  make(map[controller.PortRef]bool),
		ProbeDelay:      10 * time.Millisecond,
		ControlRTTs:     make(map[uint64]time.Duration),
		FlowStatsByDPID: make(map[uint64][]openflow.FlowStats),
		PortStatsByDPID: make(map[uint64][]openflow.PortStats),
	}
}

// Now implements controller.API.
func (f *FakeAPI) Now() time.Time { return f.Kernel.Now() }

// Schedule implements controller.API.
func (f *FakeAPI) Schedule(d time.Duration, fn func()) sim.Event {
	return f.Kernel.Schedule(d, fn)
}

// Rand implements controller.API.
func (f *FakeAPI) Rand() *rand.Rand { return f.Kernel.Rand() }

// RaiseAlert implements controller.API.
func (f *FakeAPI) RaiseAlert(module, reason, detail string) {
	f.AlertsRaised = append(f.AlertsRaised, controller.Alert{
		At: f.Kernel.Now(), Module: module, Reason: reason, Detail: detail,
	})
}

// AlertCount counts alerts with the given reason.
func (f *FakeAPI) AlertCount(reason string) int {
	n := 0
	for _, a := range f.AlertsRaised {
		if a.Reason == reason {
			n++
		}
	}
	return n
}

// ProbeHost implements controller.API using the scripted reachability map.
func (f *FakeAPI) ProbeHost(loc controller.PortRef, mac packet.MAC, ip packet.IPv4Addr, timeout time.Duration, cb func(bool)) {
	alive := f.ProbeReachable[loc]
	d := f.ProbeDelay
	if !alive {
		d = timeout
	}
	f.Kernel.Schedule(d, func() { cb(alive) })
}

// MeasureControlRTT implements controller.API using scripted RTTs.
func (f *FakeAPI) MeasureControlRTT(dpid uint64, timeout time.Duration, cb func(time.Duration, bool)) {
	rtt, ok := f.ControlRTTs[dpid]
	if !ok {
		f.Kernel.Schedule(timeout, func() { cb(0, false) })
		return
	}
	f.Kernel.Schedule(rtt, func() { cb(rtt, true) })
}

// RequestFlowStats implements controller.API.
func (f *FakeAPI) RequestFlowStats(dpid uint64, cb func([]openflow.FlowStats)) {
	stats := f.FlowStatsByDPID[dpid]
	f.Kernel.Schedule(time.Millisecond, func() { cb(stats) })
}

// RequestPortStats implements controller.API.
func (f *FakeAPI) RequestPortStats(dpid uint64, cb func([]openflow.PortStats)) {
	f.RequestPortStatsFor(dpid, openflow.PortNone, cb)
}

// RequestPortStatsFor implements controller.API with the real
// controller's callback semantics: nil for an unanswerable dpid, a
// non-nil (possibly empty) filtered slice otherwise.
func (f *FakeAPI) RequestPortStatsFor(dpid uint64, portNo uint32, cb func([]openflow.PortStats)) {
	stats, ok := f.PortStatsByDPID[dpid]
	if !ok {
		f.Kernel.Schedule(time.Millisecond, func() { cb(nil) })
		return
	}
	out := []openflow.PortStats{}
	for _, ps := range stats {
		if portNo == openflow.PortNone || ps.PortNo == portNo {
			out = append(out, ps)
		}
	}
	f.Kernel.Schedule(time.Millisecond, func() { cb(out) })
}

// PushFlowMod implements controller.API by recording the call.
func (f *FakeAPI) PushFlowMod(dpid uint64, fm *openflow.FlowMod) {
	f.FlowMods = append(f.FlowMods, PushedFlowMod{DPID: dpid, FM: *fm})
}

// Keychain implements controller.API.
func (f *FakeAPI) Keychain() *lldp.Keychain { return f.Keys }

// Metrics implements controller.API.
func (f *FakeAPI) Metrics() *obs.Registry { return f.Reg }

// Links implements controller.API.
func (f *FakeAPI) Links() []controller.Link {
	out := make([]controller.Link, len(f.LinkList))
	copy(out, f.LinkList)
	return out
}

// LinkPorts implements controller.API.
func (f *FakeAPI) LinkPorts() map[controller.PortRef]bool {
	out := make(map[controller.PortRef]bool, len(f.LinkSet))
	for k, v := range f.LinkSet {
		out[k] = v
	}
	return out
}

// HostByMAC implements controller.API.
func (f *FakeAPI) HostByMAC(mac packet.MAC) (controller.HostEntry, bool) {
	e, ok := f.HostTable[mac]
	return e, ok
}

// RestoreHostLocation implements controller.API.
func (f *FakeAPI) RestoreHostLocation(mac packet.MAC, loc controller.PortRef) {
	f.Restored = append(f.Restored, struct {
		MAC packet.MAC
		Loc controller.PortRef
	}{mac, loc})
	if e, ok := f.HostTable[mac]; ok {
		e.Loc = loc
		f.HostTable[mac] = e
	}
}

// RemoveLink implements controller.API.
func (f *FakeAPI) RemoveLink(l controller.Link) {
	f.RemovedLinks = append(f.RemovedLinks, l)
}

// Profile implements controller.API.
func (f *FakeAPI) Profile() controller.Profile { return f.Prof }

// Switches implements controller.API.
func (f *FakeAPI) Switches() []uint64 {
	out := make([]uint64, len(f.SwitchIDs))
	copy(out, f.SwitchIDs)
	return out
}
