// Package openflow implements the subset of the OpenFlow protocol the
// paper's attacks and defenses exercise: Hello/Echo, Features, Packet-In,
// Packet-Out, Flow-Mod, Port-Status and the flow/port statistics messages
// SPHINX consumes. Messages carry a real binary wire encoding (header +
// body, big-endian) so control-plane traffic in the simulation is actual
// bytes, as it is in the paper's testbed.
package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the protocol version byte carried in every header. The
// simulation speaks a single dialect modeled on OpenFlow 1.0, which is what
// Floodlight + TopoGuard used.
const Version = 0x01

// MessageType identifies an OpenFlow message body.
type MessageType uint8

// Message type codes (OpenFlow 1.0 numbering).
const (
	TypeHello           MessageType = 0
	TypeEchoRequest     MessageType = 2
	TypeEchoReply       MessageType = 3
	TypeFeaturesRequest MessageType = 5
	TypeFeaturesReply   MessageType = 6
	TypePacketIn        MessageType = 10
	TypePortStatus      MessageType = 12
	TypePacketOut       MessageType = 13
	TypeFlowMod         MessageType = 14
	TypeStatsRequest    MessageType = 16
	TypeStatsReply      MessageType = 17
	TypeBarrierRequest  MessageType = 18
	TypeBarrierReply    MessageType = 19
)

// String names the message type.
func (t MessageType) String() string {
	switch t {
	case TypeHello:
		return "Hello"
	case TypeEchoRequest:
		return "EchoRequest"
	case TypeEchoReply:
		return "EchoReply"
	case TypeFeaturesRequest:
		return "FeaturesRequest"
	case TypeFeaturesReply:
		return "FeaturesReply"
	case TypePacketIn:
		return "PacketIn"
	case TypePortStatus:
		return "PortStatus"
	case TypePacketOut:
		return "PacketOut"
	case TypeFlowMod:
		return "FlowMod"
	case TypeStatsRequest:
		return "StatsRequest"
	case TypeStatsReply:
		return "StatsReply"
	case TypeBarrierRequest:
		return "BarrierRequest"
	case TypeBarrierReply:
		return "BarrierReply"
	default:
		return fmt.Sprintf("MessageType(%d)", uint8(t))
	}
}

// Reserved port numbers (OpenFlow 1.0).
const (
	// PortMax is the highest valid physical port number.
	PortMax uint32 = 0xff00
	// PortInPort outputs back through the packet's ingress port.
	PortInPort uint32 = 0xfff8
	// PortFlood outputs to all physical ports except ingress.
	PortFlood uint32 = 0xfffb
	// PortAll outputs to all physical ports including ingress.
	PortAll uint32 = 0xfffc
	// PortController punts the packet to the controller.
	PortController uint32 = 0xfffd
	// PortNone indicates no port (e.g. PacketOut not tied to a buffer).
	PortNone uint32 = 0xffff
)

// NoBuffer indicates a PacketIn/PacketOut carrying full packet data rather
// than a switch-side buffer reference.
const NoBuffer uint32 = 0xffffffff

// PacketIn reasons.
const (
	ReasonNoMatch uint8 = 0
	ReasonAction  uint8 = 1
)

// PortStatus reasons.
const (
	PortReasonAdd    uint8 = 0
	PortReasonDelete uint8 = 1
	PortReasonModify uint8 = 2
)

// Decode errors.
var (
	ErrTruncated   = errors.New("openflow: truncated message")
	ErrBadVersion  = errors.New("openflow: unsupported version")
	ErrUnknownType = errors.New("openflow: unknown message type")
)

const headerLen = 8

// Message is any OpenFlow message body.
type Message interface {
	// MessageType reports the wire type code for the body.
	MessageType() MessageType
	// encodeBody appends the body encoding (everything after the header).
	encodeBody(buf []byte) []byte
}

// Marshal encodes a message (header + body) into wire bytes.
func Marshal(xid uint32, m Message) []byte {
	return AppendMarshal(make([]byte, 0, headerLen+64), xid, m)
}

// AppendMarshal appends a message's wire encoding (header + body) to buf
// and returns the extended slice. Hot control-path senders call it with a
// reused scratch buffer so marshaling a message does not allocate; the
// send contract (see dataplane.SetControlSender and controller.Conn)
// requires receivers not to retain the buffer past the call.
func AppendMarshal(buf []byte, xid uint32, m Message) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = m.encodeBody(buf)
	hdr := buf[start:]
	hdr[0] = Version
	hdr[1] = byte(m.MessageType())
	binary.BigEndian.PutUint16(hdr[2:4], uint16(len(buf)-start))
	binary.BigEndian.PutUint32(hdr[4:8], xid)
	return buf
}

// Unmarshal decodes one message from wire bytes, returning the transaction
// id and the typed body.
func Unmarshal(b []byte) (xid uint32, m Message, err error) {
	if len(b) < headerLen {
		return 0, nil, fmt.Errorf("%w: header needs %d bytes, have %d", ErrTruncated, headerLen, len(b))
	}
	if b[0] != Version {
		return 0, nil, fmt.Errorf("%w: 0x%02x", ErrBadVersion, b[0])
	}
	length := int(binary.BigEndian.Uint16(b[2:4]))
	if length < headerLen || length > len(b) {
		return 0, nil, fmt.Errorf("%w: declared length %d, have %d", ErrTruncated, length, len(b))
	}
	xid = binary.BigEndian.Uint32(b[4:8])
	body := b[headerLen:length]
	typ := MessageType(b[1])
	switch typ {
	case TypeHello:
		m, err = &Hello{}, nil
	case TypeEchoRequest:
		m, err = decodeEcho(body, false)
	case TypeEchoReply:
		m, err = decodeEcho(body, true)
	case TypeFeaturesRequest:
		m, err = &FeaturesRequest{}, nil
	case TypeFeaturesReply:
		m, err = decodeFeaturesReply(body)
	case TypePacketIn:
		m, err = decodePacketIn(body)
	case TypePortStatus:
		m, err = decodePortStatus(body)
	case TypePacketOut:
		m, err = decodePacketOut(body)
	case TypeFlowMod:
		m, err = decodeFlowMod(body)
	case TypeStatsRequest:
		m, err = decodeStatsRequest(body)
	case TypeStatsReply:
		m, err = decodeStatsReply(body)
	case TypeBarrierRequest:
		m, err = &BarrierRequest{}, nil
	case TypeBarrierReply:
		m, err = &BarrierReply{}, nil
	default:
		return 0, nil, fmt.Errorf("%w: %d", ErrUnknownType, b[1])
	}
	if err != nil {
		return 0, nil, fmt.Errorf("decode %s: %w", typ, err)
	}
	return xid, m, nil
}

// Hello opens a controller-switch session.
type Hello struct{}

// MessageType implements Message.
func (*Hello) MessageType() MessageType { return TypeHello }

func (*Hello) encodeBody(buf []byte) []byte { return buf }

// EchoRequest measures control-channel liveness and latency. TopoGuard+'s
// Link Latency Inspector drives these to estimate per-switch control-link
// delay.
type EchoRequest struct {
	Data []byte
}

// MessageType implements Message.
func (*EchoRequest) MessageType() MessageType { return TypeEchoRequest }

func (e *EchoRequest) encodeBody(buf []byte) []byte { return append(buf, e.Data...) }

// EchoReply answers an EchoRequest, mirroring its payload.
type EchoReply struct {
	Data []byte
}

// MessageType implements Message.
func (*EchoReply) MessageType() MessageType { return TypeEchoReply }

func (e *EchoReply) encodeBody(buf []byte) []byte { return append(buf, e.Data...) }

func decodeEcho(body []byte, reply bool) (Message, error) {
	data := make([]byte, len(body))
	copy(data, body)
	if reply {
		return &EchoReply{Data: data}, nil
	}
	return &EchoRequest{Data: data}, nil
}

// FeaturesRequest asks a switch for its datapath description.
type FeaturesRequest struct{}

// MessageType implements Message.
func (*FeaturesRequest) MessageType() MessageType { return TypeFeaturesRequest }

func (*FeaturesRequest) encodeBody(buf []byte) []byte { return buf }

// BarrierRequest asks the switch to finish all preceding messages before
// answering; the controller uses it to order FlowMods.
type BarrierRequest struct{}

// MessageType implements Message.
func (*BarrierRequest) MessageType() MessageType { return TypeBarrierRequest }

func (*BarrierRequest) encodeBody(buf []byte) []byte { return buf }

// BarrierReply answers a BarrierRequest.
type BarrierReply struct{}

// MessageType implements Message.
func (*BarrierReply) MessageType() MessageType { return TypeBarrierReply }

func (*BarrierReply) encodeBody(buf []byte) []byte { return buf }

// PortDesc describes one switch port.
type PortDesc struct {
	No   uint32
	Name string // at most 16 bytes on the wire
	Up   bool
}

const portDescLen = 4 + 16 + 1

func (p *PortDesc) encode(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, p.No)
	name := make([]byte, 16)
	copy(name, p.Name)
	buf = append(buf, name...)
	if p.Up {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func decodePortDesc(b []byte) (PortDesc, error) {
	if len(b) < portDescLen {
		return PortDesc{}, fmt.Errorf("%w: port desc needs %d bytes", ErrTruncated, portDescLen)
	}
	name := b[4:20]
	end := 0
	for end < len(name) && name[end] != 0 {
		end++
	}
	return PortDesc{
		No:   binary.BigEndian.Uint32(b[0:4]),
		Name: string(name[:end]),
		Up:   b[20] == 1,
	}, nil
}

// FeaturesReply announces a switch's datapath id and ports.
type FeaturesReply struct {
	DatapathID uint64
	Ports      []PortDesc
}

// MessageType implements Message.
func (*FeaturesReply) MessageType() MessageType { return TypeFeaturesReply }

func (f *FeaturesReply) encodeBody(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, f.DatapathID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(f.Ports)))
	for i := range f.Ports {
		buf = f.Ports[i].encode(buf)
	}
	return buf
}

func decodeFeaturesReply(b []byte) (Message, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("%w: features reply needs 10 bytes", ErrTruncated)
	}
	f := &FeaturesReply{DatapathID: binary.BigEndian.Uint64(b[0:8])}
	n := int(binary.BigEndian.Uint16(b[8:10]))
	b = b[10:]
	f.Ports = make([]PortDesc, 0, n)
	for i := 0; i < n; i++ {
		p, err := decodePortDesc(b)
		if err != nil {
			return nil, err
		}
		f.Ports = append(f.Ports, p)
		b = b[portDescLen:]
	}
	return f, nil
}

// PacketIn punts a dataplane packet to the controller.
type PacketIn struct {
	BufferID uint32
	InPort   uint32
	Reason   uint8
	Data     []byte // raw Ethernet frame
}

// MessageType implements Message.
func (*PacketIn) MessageType() MessageType { return TypePacketIn }

func (p *PacketIn) encodeBody(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, p.BufferID)
	buf = binary.BigEndian.AppendUint32(buf, p.InPort)
	buf = append(buf, p.Reason)
	return append(buf, p.Data...)
}

func decodePacketIn(b []byte) (Message, error) {
	if len(b) < 9 {
		return nil, fmt.Errorf("%w: packet-in needs 9 bytes", ErrTruncated)
	}
	p := &PacketIn{
		BufferID: binary.BigEndian.Uint32(b[0:4]),
		InPort:   binary.BigEndian.Uint32(b[4:8]),
		Reason:   b[8],
	}
	p.Data = make([]byte, len(b)-9)
	copy(p.Data, b[9:])
	return p, nil
}

// PortStatus announces a port state change (the Port-Down / Port-Up events
// at the center of the port amnesia attack).
type PortStatus struct {
	Reason uint8
	Desc   PortDesc
}

// MessageType implements Message.
func (*PortStatus) MessageType() MessageType { return TypePortStatus }

func (p *PortStatus) encodeBody(buf []byte) []byte {
	buf = append(buf, p.Reason)
	return p.Desc.encode(buf)
}

func decodePortStatus(b []byte) (Message, error) {
	if len(b) < 1+portDescLen {
		return nil, fmt.Errorf("%w: port status needs %d bytes", ErrTruncated, 1+portDescLen)
	}
	desc, err := decodePortDesc(b[1:])
	if err != nil {
		return nil, err
	}
	return &PortStatus{Reason: b[0], Desc: desc}, nil
}

// PacketOut injects a packet into the dataplane with an action list.
type PacketOut struct {
	BufferID uint32
	InPort   uint32
	Actions  []Action
	Data     []byte
}

// MessageType implements Message.
func (*PacketOut) MessageType() MessageType { return TypePacketOut }

func (p *PacketOut) encodeBody(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, p.BufferID)
	buf = binary.BigEndian.AppendUint32(buf, p.InPort)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Actions)))
	for _, a := range p.Actions {
		buf = a.encode(buf)
	}
	return append(buf, p.Data...)
}

func decodePacketOut(b []byte) (Message, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("%w: packet-out needs 10 bytes", ErrTruncated)
	}
	p := &PacketOut{
		BufferID: binary.BigEndian.Uint32(b[0:4]),
		InPort:   binary.BigEndian.Uint32(b[4:8]),
	}
	n := int(binary.BigEndian.Uint16(b[8:10]))
	rest := b[10:]
	var err error
	p.Actions, rest, err = decodeActions(rest, n)
	if err != nil {
		return nil, err
	}
	p.Data = make([]byte, len(rest))
	copy(p.Data, rest)
	return p, nil
}

// FlowMod commands.
const (
	FlowAdd    uint8 = 0
	FlowModify uint8 = 1
	FlowDelete uint8 = 3
)

// FlowMod installs, modifies or removes flow table entries.
type FlowMod struct {
	Command     uint8
	Match       Match
	Priority    uint16
	IdleTimeout uint16 // seconds; 0 = permanent
	HardTimeout uint16 // seconds; 0 = permanent
	Actions     []Action
}

// MessageType implements Message.
func (*FlowMod) MessageType() MessageType { return TypeFlowMod }

func (f *FlowMod) encodeBody(buf []byte) []byte {
	buf = append(buf, f.Command)
	buf = f.Match.encode(buf)
	buf = binary.BigEndian.AppendUint16(buf, f.Priority)
	buf = binary.BigEndian.AppendUint16(buf, f.IdleTimeout)
	buf = binary.BigEndian.AppendUint16(buf, f.HardTimeout)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(f.Actions)))
	for _, a := range f.Actions {
		buf = a.encode(buf)
	}
	return buf
}

func decodeFlowMod(b []byte) (Message, error) {
	if len(b) < 1+matchLen+8 {
		return nil, fmt.Errorf("%w: flow-mod needs %d bytes", ErrTruncated, 1+matchLen+8)
	}
	f := &FlowMod{Command: b[0]}
	var err error
	f.Match, err = decodeMatch(b[1 : 1+matchLen])
	if err != nil {
		return nil, err
	}
	rest := b[1+matchLen:]
	f.Priority = binary.BigEndian.Uint16(rest[0:2])
	f.IdleTimeout = binary.BigEndian.Uint16(rest[2:4])
	f.HardTimeout = binary.BigEndian.Uint16(rest[4:6])
	n := int(binary.BigEndian.Uint16(rest[6:8]))
	f.Actions, _, err = decodeActions(rest[8:], n)
	if err != nil {
		return nil, err
	}
	return f, nil
}
