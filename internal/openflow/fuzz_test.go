package openflow

import (
	"testing"
	"testing/quick"
)

// TestUnmarshalNeverPanics feeds arbitrary bytes to the wire decoder: the
// controller parses attacker-reachable input, so decode must fail closed,
// never crash.
func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %x: %v", data, r)
			}
		}()
		_, _, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestUnmarshalValidHeaderRandomBody stresses the per-type body decoders
// specifically: a well-formed header routes random bytes into each one.
func TestUnmarshalValidHeaderRandomBody(t *testing.T) {
	types := []MessageType{
		TypeHello, TypeEchoRequest, TypeEchoReply, TypeFeaturesRequest,
		TypeFeaturesReply, TypePacketIn, TypePortStatus, TypePacketOut,
		TypeFlowMod, TypeStatsRequest, TypeStatsReply,
	}
	f := func(body []byte, typIdx uint8) bool {
		if len(body) > 512 {
			body = body[:512]
		}
		typ := types[int(typIdx)%len(types)]
		buf := make([]byte, 8+len(body))
		buf[0] = Version
		buf[1] = byte(typ)
		buf[2] = byte((8 + len(body)) >> 8)
		buf[3] = byte(8 + len(body))
		copy(buf[8:], body)
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on type %s body %x: %v", typ, body, r)
			}
		}()
		_, _, _ = Unmarshal(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodedMessagesReencode checks that any message that decodes
// successfully also re-encodes without panicking (round-trip safety for
// proxy/relay code paths).
func TestDecodedMessagesReencode(t *testing.T) {
	f := func(body []byte, typIdx uint8) bool {
		types := []MessageType{TypeEchoRequest, TypePacketIn, TypePortStatus, TypePacketOut, TypeFlowMod}
		typ := types[int(typIdx)%len(types)]
		if len(body) > 256 {
			body = body[:256]
		}
		buf := make([]byte, 8+len(body))
		buf[0] = Version
		buf[1] = byte(typ)
		buf[2] = byte((8 + len(body)) >> 8)
		buf[3] = byte(8 + len(body))
		copy(buf[8:], body)
		xid, m, err := Unmarshal(buf)
		if err != nil {
			return true
		}
		_ = Marshal(xid, m)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
