package openflow

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Stats request/reply kinds.
const (
	StatsFlow uint8 = 1
	StatsPort uint8 = 4
)

// StatsRequest polls a switch for flow or port counters. SPHINX issues
// these periodically to cross-check Flow-Mod expectations against observed
// dataplane volume.
type StatsRequest struct {
	Kind uint8
	// PortNo scopes a port-stats request; PortNone requests all ports.
	PortNo uint32
}

// MessageType implements Message.
func (*StatsRequest) MessageType() MessageType { return TypeStatsRequest }

func (s *StatsRequest) encodeBody(buf []byte) []byte {
	buf = append(buf, s.Kind)
	return binary.BigEndian.AppendUint32(buf, s.PortNo)
}

func decodeStatsRequest(b []byte) (Message, error) {
	if len(b) < 5 {
		return nil, fmt.Errorf("%w: stats request needs 5 bytes", ErrTruncated)
	}
	return &StatsRequest{Kind: b[0], PortNo: binary.BigEndian.Uint32(b[1:5])}, nil
}

// FlowStats is one flow entry's counters.
type FlowStats struct {
	Match    Match
	Priority uint16
	Packets  uint64
	Bytes    uint64
	Duration time.Duration
}

const flowStatsLen = matchLen + 2 + 8 + 8 + 8

func (f *FlowStats) encode(buf []byte) []byte {
	buf = f.Match.encode(buf)
	buf = binary.BigEndian.AppendUint16(buf, f.Priority)
	buf = binary.BigEndian.AppendUint64(buf, f.Packets)
	buf = binary.BigEndian.AppendUint64(buf, f.Bytes)
	return binary.BigEndian.AppendUint64(buf, uint64(f.Duration))
}

func decodeFlowStats(b []byte) (FlowStats, error) {
	if len(b) < flowStatsLen {
		return FlowStats{}, fmt.Errorf("%w: flow stats needs %d bytes", ErrTruncated, flowStatsLen)
	}
	m, err := decodeMatch(b)
	if err != nil {
		return FlowStats{}, err
	}
	rest := b[matchLen:]
	return FlowStats{
		Match:    m,
		Priority: binary.BigEndian.Uint16(rest[0:2]),
		Packets:  binary.BigEndian.Uint64(rest[2:10]),
		Bytes:    binary.BigEndian.Uint64(rest[10:18]),
		Duration: time.Duration(binary.BigEndian.Uint64(rest[18:26])),
	}, nil
}

// PortStats is one port's cumulative counters.
type PortStats struct {
	PortNo    uint32
	RxPackets uint64
	TxPackets uint64
	RxBytes   uint64
	TxBytes   uint64
}

const portStatsLen = 4 + 8*4

func (p *PortStats) encode(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, p.PortNo)
	buf = binary.BigEndian.AppendUint64(buf, p.RxPackets)
	buf = binary.BigEndian.AppendUint64(buf, p.TxPackets)
	buf = binary.BigEndian.AppendUint64(buf, p.RxBytes)
	return binary.BigEndian.AppendUint64(buf, p.TxBytes)
}

func decodePortStats(b []byte) (PortStats, error) {
	if len(b) < portStatsLen {
		return PortStats{}, fmt.Errorf("%w: port stats needs %d bytes", ErrTruncated, portStatsLen)
	}
	return PortStats{
		PortNo:    binary.BigEndian.Uint32(b[0:4]),
		RxPackets: binary.BigEndian.Uint64(b[4:12]),
		TxPackets: binary.BigEndian.Uint64(b[12:20]),
		RxBytes:   binary.BigEndian.Uint64(b[20:28]),
		TxBytes:   binary.BigEndian.Uint64(b[28:36]),
	}, nil
}

// StatsReply carries flow or port counter sets, depending on Kind.
type StatsReply struct {
	Kind  uint8
	Flows []FlowStats
	Ports []PortStats
}

// MessageType implements Message.
func (*StatsReply) MessageType() MessageType { return TypeStatsReply }

func (s *StatsReply) encodeBody(buf []byte) []byte {
	buf = append(buf, s.Kind)
	switch s.Kind {
	case StatsFlow:
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(s.Flows)))
		for i := range s.Flows {
			buf = s.Flows[i].encode(buf)
		}
	case StatsPort:
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(s.Ports)))
		for i := range s.Ports {
			buf = s.Ports[i].encode(buf)
		}
	}
	return buf
}

func decodeStatsReply(b []byte) (Message, error) {
	if len(b) < 3 {
		return nil, fmt.Errorf("%w: stats reply needs 3 bytes", ErrTruncated)
	}
	s := &StatsReply{Kind: b[0]}
	n := int(binary.BigEndian.Uint16(b[1:3]))
	b = b[3:]
	switch s.Kind {
	case StatsFlow:
		s.Flows = make([]FlowStats, 0, n)
		for i := 0; i < n; i++ {
			fs, err := decodeFlowStats(b)
			if err != nil {
				return nil, err
			}
			s.Flows = append(s.Flows, fs)
			b = b[flowStatsLen:]
		}
	case StatsPort:
		s.Ports = make([]PortStats, 0, n)
		for i := 0; i < n; i++ {
			ps, err := decodePortStats(b)
			if err != nil {
				return nil, err
			}
			s.Ports = append(s.Ports, ps)
			b = b[portStatsLen:]
		}
	default:
		return nil, fmt.Errorf("openflow: unknown stats kind %d", s.Kind)
	}
	return s, nil
}
