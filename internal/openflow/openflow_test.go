package openflow

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"sdntamper/internal/packet"
)

func roundTrip(t *testing.T, xid uint32, m Message) Message {
	t.Helper()
	gotXID, got, err := Unmarshal(Marshal(xid, m))
	if err != nil {
		t.Fatalf("unmarshal %s: %v", m.MessageType(), err)
	}
	if gotXID != xid {
		t.Fatalf("xid = %d, want %d", gotXID, xid)
	}
	if got.MessageType() != m.MessageType() {
		t.Fatalf("type = %s, want %s", got.MessageType(), m.MessageType())
	}
	return got
}

func TestHelloRoundTrip(t *testing.T) {
	roundTrip(t, 1, &Hello{})
}

func TestEchoRoundTrip(t *testing.T) {
	req, ok := roundTrip(t, 2, &EchoRequest{Data: []byte("probe-77")}).(*EchoRequest)
	if !ok || !bytes.Equal(req.Data, []byte("probe-77")) {
		t.Fatalf("echo request mismatch: %+v", req)
	}
	rep, ok := roundTrip(t, 3, &EchoReply{Data: []byte("probe-77")}).(*EchoReply)
	if !ok || !bytes.Equal(rep.Data, []byte("probe-77")) {
		t.Fatalf("echo reply mismatch: %+v", rep)
	}
}

func TestFeaturesRoundTrip(t *testing.T) {
	roundTrip(t, 4, &FeaturesRequest{})
	in := &FeaturesReply{
		DatapathID: 0x1,
		Ports: []PortDesc{
			{No: 1, Name: "eth1", Up: true},
			{No: 2, Name: "eth2", Up: false},
		},
	}
	got, ok := roundTrip(t, 5, in).(*FeaturesReply)
	if !ok || !reflect.DeepEqual(got, in) {
		t.Fatalf("features reply mismatch:\n got %+v\nwant %+v", got, in)
	}
}

func TestPortDescLongNameTruncates(t *testing.T) {
	in := &FeaturesReply{DatapathID: 1, Ports: []PortDesc{{No: 1, Name: "a-very-long-port-name-indeed", Up: true}}}
	got, ok := roundTrip(t, 1, in).(*FeaturesReply)
	if !ok || len(got.Ports[0].Name) != 16 {
		t.Fatalf("port name = %q, want 16-byte truncation", got.Ports[0].Name)
	}
}

func TestPacketInRoundTrip(t *testing.T) {
	in := &PacketIn{BufferID: NoBuffer, InPort: 3, Reason: ReasonNoMatch, Data: []byte{1, 2, 3}}
	got, ok := roundTrip(t, 6, in).(*PacketIn)
	if !ok || !reflect.DeepEqual(got, in) {
		t.Fatalf("packet-in mismatch: %+v vs %+v", got, in)
	}
}

func TestPortStatusRoundTrip(t *testing.T) {
	in := &PortStatus{Reason: PortReasonModify, Desc: PortDesc{No: 7, Name: "eth7", Up: false}}
	got, ok := roundTrip(t, 7, in).(*PortStatus)
	if !ok || !reflect.DeepEqual(got, in) {
		t.Fatalf("port-status mismatch: %+v vs %+v", got, in)
	}
}

func TestPacketOutRoundTrip(t *testing.T) {
	in := &PacketOut{
		BufferID: NoBuffer,
		InPort:   PortNone,
		Actions:  []Action{Output(2), OutputFlood()},
		Data:     []byte{0xde, 0xad},
	}
	got, ok := roundTrip(t, 8, in).(*PacketOut)
	if !ok || !reflect.DeepEqual(got, in) {
		t.Fatalf("packet-out mismatch: %+v vs %+v", got, in)
	}
}

func TestPacketOutNoActions(t *testing.T) {
	in := &PacketOut{BufferID: NoBuffer, InPort: 1, Actions: []Action{}, Data: nil}
	got, ok := roundTrip(t, 9, in).(*PacketOut)
	if !ok || len(got.Actions) != 0 || len(got.Data) != 0 {
		t.Fatalf("empty packet-out mismatch: %+v", got)
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	in := &FlowMod{
		Command: FlowAdd,
		Match: Match{
			Wildcards: WildAll &^ WildEthDst,
			Fields:    Fields{EthDst: packet.MustMAC("aa:aa:aa:aa:aa:aa")},
		},
		Priority:    100,
		IdleTimeout: 5,
		HardTimeout: 0,
		Actions:     []Action{Output(4)},
	}
	got, ok := roundTrip(t, 10, in).(*FlowMod)
	if !ok || !reflect.DeepEqual(got, in) {
		t.Fatalf("flow-mod mismatch:\n got %+v\nwant %+v", got, in)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	req := &StatsRequest{Kind: StatsPort, PortNo: PortNone}
	gotReq, ok := roundTrip(t, 11, req).(*StatsRequest)
	if !ok || !reflect.DeepEqual(gotReq, req) {
		t.Fatalf("stats request mismatch: %+v", gotReq)
	}

	flowRep := &StatsReply{
		Kind: StatsFlow,
		Flows: []FlowStats{
			{Match: MatchAll(), Priority: 1, Packets: 10, Bytes: 1000, Duration: 3 * time.Second},
		},
	}
	gotFlow, ok := roundTrip(t, 12, flowRep).(*StatsReply)
	if !ok || !reflect.DeepEqual(gotFlow, flowRep) {
		t.Fatalf("flow stats mismatch:\n got %+v\nwant %+v", gotFlow, flowRep)
	}

	portRep := &StatsReply{
		Kind: StatsPort,
		Ports: []PortStats{
			{PortNo: 1, RxPackets: 5, TxPackets: 6, RxBytes: 500, TxBytes: 600},
			{PortNo: 2, RxPackets: 7, TxPackets: 8, RxBytes: 700, TxBytes: 800},
		},
	}
	gotPort, ok := roundTrip(t, 13, portRep).(*StatsReply)
	if !ok || !reflect.DeepEqual(gotPort, portRep) {
		t.Fatalf("port stats mismatch:\n got %+v\nwant %+v", gotPort, portRep)
	}
}

func TestBarrierRoundTrip(t *testing.T) {
	roundTrip(t, 14, &BarrierRequest{})
	roundTrip(t, 15, &BarrierReply{})
}

func TestUnmarshalErrors(t *testing.T) {
	if _, _, err := Unmarshal(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("nil: %v", err)
	}
	bad := Marshal(1, &Hello{})
	bad[0] = 0x04
	if _, _, err := Unmarshal(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}
	bad = Marshal(1, &Hello{})
	bad[1] = 0xee
	if _, _, err := Unmarshal(bad); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("unknown type: %v", err)
	}
	bad = Marshal(1, &PacketIn{Data: []byte{1}})
	bad = bad[:9] // cut into the body
	bad[2] = 0
	bad[3] = 20 // length now exceeds buffer
	if _, _, err := Unmarshal(bad); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short body: %v", err)
	}
}

func TestUnmarshalTruncatedBodies(t *testing.T) {
	msgs := []Message{
		&FeaturesReply{DatapathID: 1, Ports: []PortDesc{{No: 1}}},
		&PacketIn{Data: []byte{1}},
		&PortStatus{},
		&PacketOut{Actions: []Action{Output(1)}},
		&FlowMod{Match: MatchAll()},
		&StatsRequest{},
		&StatsReply{Kind: StatsFlow, Flows: []FlowStats{{}}},
	}
	for _, m := range msgs {
		full := Marshal(1, m)
		for cut := 9; cut < len(full)-1; cut += 3 {
			b := make([]byte, cut)
			copy(b, full[:cut])
			// Fix up declared length so the header passes and body decode
			// must do its own bounds checks.
			b[2] = byte(cut >> 8)
			b[3] = byte(cut)
			if _, _, err := Unmarshal(b); err == nil {
				// Some prefixes are legitimately decodable (e.g. PacketIn
				// with shorter data); only structural truncations must fail.
				continue
			}
		}
	}
}

func TestMatchAllMatchesEverything(t *testing.T) {
	f := func(inPort uint32, src, dst [6]byte, etype uint16) bool {
		return MatchAll().Matches(Fields{InPort: inPort, EthSrc: packet.MAC(src), EthDst: packet.MAC(dst), EthType: etype})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExactMatchIsExact(t *testing.T) {
	base := Fields{
		InPort: 1,
		EthSrc: packet.MustMAC("aa:aa:aa:aa:aa:aa"),
		EthDst: packet.MustMAC("bb:bb:bb:bb:bb:bb"),
	}
	m := ExactMatch(base)
	if !m.Matches(base) {
		t.Fatal("exact match rejected identical tuple")
	}
	other := base
	other.InPort = 2
	if m.Matches(other) {
		t.Fatal("exact match accepted different in-port")
	}
}

func TestPartialWildcards(t *testing.T) {
	dst := packet.MustMAC("bb:bb:bb:bb:bb:bb")
	m := Match{Wildcards: WildAll &^ WildEthDst, Fields: Fields{EthDst: dst}}
	if !m.Matches(Fields{InPort: 99, EthDst: dst}) {
		t.Fatal("dst-only match rejected matching packet")
	}
	if m.Matches(Fields{InPort: 99, EthDst: packet.MustMAC("cc:cc:cc:cc:cc:cc")}) {
		t.Fatal("dst-only match accepted wrong dst")
	}
}

func TestMatchesEachFieldIndependently(t *testing.T) {
	base := Fields{
		InPort: 1, EthType: 0x0800, IPProto: 6, TPSrc: 1000, TPDst: 80,
		EthSrc: packet.MustMAC("aa:aa:aa:aa:aa:aa"),
		EthDst: packet.MustMAC("bb:bb:bb:bb:bb:bb"),
		IPSrc:  packet.MustIPv4("10.0.0.1"),
		IPDst:  packet.MustIPv4("10.0.0.2"),
	}
	mutations := []func(*Fields){
		func(f *Fields) { f.InPort++ },
		func(f *Fields) { f.EthSrc[5]++ },
		func(f *Fields) { f.EthDst[5]++ },
		func(f *Fields) { f.EthType++ },
		func(f *Fields) { f.IPSrc[3]++ },
		func(f *Fields) { f.IPDst[3]++ },
		func(f *Fields) { f.IPProto++ },
		func(f *Fields) { f.TPSrc++ },
		func(f *Fields) { f.TPDst++ },
	}
	m := ExactMatch(base)
	for i, mutate := range mutations {
		other := base
		mutate(&other)
		if m.Matches(other) {
			t.Fatalf("mutation %d not detected by exact match", i)
		}
	}
}

func TestExtractFieldsTCP(t *testing.T) {
	e := packet.NewTCPSegment(
		packet.MustMAC("aa:aa:aa:aa:aa:aa"), packet.MustMAC("bb:bb:bb:bb:bb:bb"),
		packet.MustIPv4("10.0.0.1"), packet.MustIPv4("10.0.0.2"),
		40000, 443, packet.TCPSyn, 0, 0, nil)
	f := ExtractFields(5, e.Marshal())
	if f.InPort != 5 || f.EthType != uint16(packet.EtherTypeIPv4) ||
		f.IPProto != packet.ProtoTCP || f.TPSrc != 40000 || f.TPDst != 443 {
		t.Fatalf("fields = %+v", f)
	}
}

func TestExtractFieldsICMPUsesTypeCode(t *testing.T) {
	e := packet.NewICMPEcho(
		packet.MustMAC("aa:aa:aa:aa:aa:aa"), packet.MustMAC("bb:bb:bb:bb:bb:bb"),
		packet.MustIPv4("10.0.0.1"), packet.MustIPv4("10.0.0.2"), 1, 1, false)
	f := ExtractFields(1, e.Marshal())
	if f.TPSrc != uint16(packet.ICMPEchoRequest) || f.TPDst != 0 {
		t.Fatalf("icmp type/code = %d/%d", f.TPSrc, f.TPDst)
	}
}

func TestExtractFieldsARP(t *testing.T) {
	e := packet.NewARPRequest(packet.MustMAC("aa:aa:aa:aa:aa:aa"), packet.MustIPv4("10.0.0.1"), packet.MustIPv4("10.0.0.2"))
	f := ExtractFields(2, e.Marshal())
	if f.EthType != uint16(packet.EtherTypeARP) {
		t.Fatalf("ethtype = 0x%04x", f.EthType)
	}
	if !f.IPSrc.IsZero() {
		t.Fatal("ARP should not populate IP fields")
	}
}

func TestExtractFieldsGarbage(t *testing.T) {
	f := ExtractFields(3, []byte{1, 2})
	if f.InPort != 3 || f.EthType != 0 {
		t.Fatalf("garbage fields = %+v", f)
	}
}

func TestMatchString(t *testing.T) {
	if got := MatchAll().String(); got != "match(*)" {
		t.Fatalf("MatchAll string = %q", got)
	}
	m := Match{Wildcards: WildAll &^ WildInPort, Fields: Fields{InPort: 7}}
	if got := m.String(); got != "match(in=7)" {
		t.Fatalf("partial match string = %q", got)
	}
}

func TestActionString(t *testing.T) {
	cases := map[string]Action{
		"output(CONTROLLER)": OutputController(),
		"output(FLOOD)":      OutputFlood(),
		"output(3)":          Output(3),
	}
	for want, a := range cases {
		if got := a.String(); got != want {
			t.Fatalf("action = %q, want %q", got, want)
		}
	}
}

func TestMessageTypeString(t *testing.T) {
	if TypePacketIn.String() != "PacketIn" || MessageType(99).String() != "MessageType(99)" {
		t.Fatal("message type names wrong")
	}
}

func TestMatchEncodeRoundTripProperty(t *testing.T) {
	f := func(wild uint32, inPort uint32, src, dst [6]byte, etype uint16, ipsrc, ipdst [4]byte, proto uint8, tps, tpd uint16) bool {
		m := Match{
			Wildcards: Wildcards(wild) & WildAll,
			Fields: Fields{
				InPort: inPort, EthSrc: packet.MAC(src), EthDst: packet.MAC(dst),
				EthType: etype, IPSrc: packet.IPv4Addr(ipsrc), IPDst: packet.IPv4Addr(ipdst),
				IPProto: proto, TPSrc: tps, TPDst: tpd,
			},
		}
		got, err := decodeMatch(m.encode(nil))
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
