package openflow

import (
	"encoding/binary"
	"fmt"
	"strings"

	"sdntamper/internal/packet"
)

// Wildcards flags which Match fields are ignored during lookup.
type Wildcards uint32

// Wildcard bits, one per matchable field.
const (
	WildInPort Wildcards = 1 << iota
	WildEthSrc
	WildEthDst
	WildEthType
	WildIPSrc
	WildIPDst
	WildIPProto
	WildTPSrc
	WildTPDst

	// WildAll ignores every field (a table-miss style match).
	WildAll Wildcards = WildInPort | WildEthSrc | WildEthDst | WildEthType |
		WildIPSrc | WildIPDst | WildIPProto | WildTPSrc | WildTPDst
)

// Has reports whether all bits in w2 are set.
func (w Wildcards) Has(w2 Wildcards) bool { return w&w2 == w2 }

// Fields is the header tuple extracted from a dataplane packet, the value
// a Match is tested against. Transport ports carry the ICMP type/code for
// ICMP packets, mirroring OpenFlow 1.0.
type Fields struct {
	InPort  uint32
	EthSrc  packet.MAC
	EthDst  packet.MAC
	EthType uint16
	IPSrc   packet.IPv4Addr
	IPDst   packet.IPv4Addr
	IPProto uint8
	TPSrc   uint16
	TPDst   uint16
}

// ExtractFields parses a raw Ethernet frame received on inPort into the
// OpenFlow match tuple. Parse failures of inner layers yield a partially
// populated tuple rather than an error, as a hardware switch would.
func ExtractFields(inPort uint32, data []byte) Fields {
	f := Fields{InPort: inPort}
	eth, err := packet.UnmarshalEthernet(data)
	if err != nil {
		return f
	}
	f.EthSrc = eth.Src
	f.EthDst = eth.Dst
	f.EthType = uint16(eth.Type)
	if eth.Type != packet.EtherTypeIPv4 {
		return f
	}
	ip, err := packet.UnmarshalIPv4(eth.Payload)
	if err != nil {
		return f
	}
	f.IPSrc = ip.Src
	f.IPDst = ip.Dst
	f.IPProto = ip.Protocol
	switch ip.Protocol {
	case packet.ProtoTCP:
		if t, err := packet.UnmarshalTCP(ip.Payload); err == nil {
			f.TPSrc = t.SrcPort
			f.TPDst = t.DstPort
		}
	case packet.ProtoUDP:
		if u, err := packet.UnmarshalUDP(ip.Payload); err == nil {
			f.TPSrc = u.SrcPort
			f.TPDst = u.DstPort
		}
	case packet.ProtoICMP:
		if m, err := packet.UnmarshalICMP(ip.Payload); err == nil {
			f.TPSrc = uint16(m.Type)
			f.TPDst = uint16(m.Code)
		}
	}
	return f
}

// Match is an OpenFlow 1.0-style exact/wildcard flow match.
type Match struct {
	Wildcards Wildcards
	Fields    Fields
}

// MatchAll matches every packet.
func MatchAll() Match { return Match{Wildcards: WildAll} }

// ExactMatch matches precisely the given tuple.
func ExactMatch(f Fields) Match { return Match{Fields: f} }

// Matches reports whether the tuple satisfies the match.
func (m Match) Matches(f Fields) bool {
	w := m.Wildcards
	switch {
	case !w.Has(WildInPort) && m.Fields.InPort != f.InPort:
		return false
	case !w.Has(WildEthSrc) && m.Fields.EthSrc != f.EthSrc:
		return false
	case !w.Has(WildEthDst) && m.Fields.EthDst != f.EthDst:
		return false
	case !w.Has(WildEthType) && m.Fields.EthType != f.EthType:
		return false
	case !w.Has(WildIPSrc) && m.Fields.IPSrc != f.IPSrc:
		return false
	case !w.Has(WildIPDst) && m.Fields.IPDst != f.IPDst:
		return false
	case !w.Has(WildIPProto) && m.Fields.IPProto != f.IPProto:
		return false
	case !w.Has(WildTPSrc) && m.Fields.TPSrc != f.TPSrc:
		return false
	case !w.Has(WildTPDst) && m.Fields.TPDst != f.TPDst:
		return false
	}
	return true
}

// String renders only the concrete (non-wildcarded) fields.
func (m Match) String() string {
	if m.Wildcards.Has(WildAll) {
		return "match(*)"
	}
	var parts []string
	add := func(w Wildcards, name, val string) {
		if !m.Wildcards.Has(w) {
			parts = append(parts, name+"="+val)
		}
	}
	add(WildInPort, "in", fmt.Sprint(m.Fields.InPort))
	add(WildEthSrc, "ethsrc", m.Fields.EthSrc.String())
	add(WildEthDst, "ethdst", m.Fields.EthDst.String())
	add(WildEthType, "ethtype", fmt.Sprintf("0x%04x", m.Fields.EthType))
	add(WildIPSrc, "ipsrc", m.Fields.IPSrc.String())
	add(WildIPDst, "ipdst", m.Fields.IPDst.String())
	add(WildIPProto, "proto", fmt.Sprint(m.Fields.IPProto))
	add(WildTPSrc, "tpsrc", fmt.Sprint(m.Fields.TPSrc))
	add(WildTPDst, "tpdst", fmt.Sprint(m.Fields.TPDst))
	return "match(" + strings.Join(parts, ",") + ")"
}

const matchLen = 4 + 4 + 6 + 6 + 2 + 4 + 4 + 1 + 2 + 2 // 35 bytes

func (m Match) encode(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Wildcards))
	buf = binary.BigEndian.AppendUint32(buf, m.Fields.InPort)
	buf = append(buf, m.Fields.EthSrc[:]...)
	buf = append(buf, m.Fields.EthDst[:]...)
	buf = binary.BigEndian.AppendUint16(buf, m.Fields.EthType)
	buf = append(buf, m.Fields.IPSrc[:]...)
	buf = append(buf, m.Fields.IPDst[:]...)
	buf = append(buf, m.Fields.IPProto)
	buf = binary.BigEndian.AppendUint16(buf, m.Fields.TPSrc)
	return binary.BigEndian.AppendUint16(buf, m.Fields.TPDst)
}

func decodeMatch(b []byte) (Match, error) {
	if len(b) < matchLen {
		return Match{}, fmt.Errorf("%w: match needs %d bytes, have %d", ErrTruncated, matchLen, len(b))
	}
	var m Match
	m.Wildcards = Wildcards(binary.BigEndian.Uint32(b[0:4]))
	m.Fields.InPort = binary.BigEndian.Uint32(b[4:8])
	copy(m.Fields.EthSrc[:], b[8:14])
	copy(m.Fields.EthDst[:], b[14:20])
	m.Fields.EthType = binary.BigEndian.Uint16(b[20:22])
	copy(m.Fields.IPSrc[:], b[22:26])
	copy(m.Fields.IPDst[:], b[26:30])
	m.Fields.IPProto = b[30]
	m.Fields.TPSrc = binary.BigEndian.Uint16(b[31:33])
	m.Fields.TPDst = binary.BigEndian.Uint16(b[33:35])
	return m, nil
}
