package openflow

import (
	"encoding/binary"
	"fmt"
)

// Action is an OpenFlow output-style action. The simulation needs only the
// Output action family; reserved port numbers express flood, controller
// punt and in-port semantics.
type Action struct {
	// Port is the output port: a physical port number or one of the
	// reserved Port* constants.
	Port uint32
}

// Output constructs an output-to-port action.
func Output(port uint32) Action { return Action{Port: port} }

// OutputController constructs a punt-to-controller action.
func OutputController() Action { return Action{Port: PortController} }

// OutputFlood constructs a flood action (all ports except ingress).
func OutputFlood() Action { return Action{Port: PortFlood} }

// String renders the action for traces.
func (a Action) String() string {
	switch a.Port {
	case PortController:
		return "output(CONTROLLER)"
	case PortFlood:
		return "output(FLOOD)"
	case PortAll:
		return "output(ALL)"
	case PortInPort:
		return "output(IN_PORT)"
	default:
		return fmt.Sprintf("output(%d)", a.Port)
	}
}

const actionLen = 8

func (a Action) encode(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint16(buf, 0) // action type: output
	buf = binary.BigEndian.AppendUint16(buf, actionLen)
	return binary.BigEndian.AppendUint32(buf, a.Port)
}

func decodeActions(b []byte, n int) ([]Action, []byte, error) {
	actions := make([]Action, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < actionLen {
			return nil, nil, fmt.Errorf("%w: action %d needs %d bytes, have %d", ErrTruncated, i, actionLen, len(b))
		}
		length := int(binary.BigEndian.Uint16(b[2:4]))
		if length != actionLen {
			return nil, nil, fmt.Errorf("openflow: unsupported action length %d", length)
		}
		actions = append(actions, Action{Port: binary.BigEndian.Uint32(b[4:8])})
		b = b[actionLen:]
	}
	return actions, b, nil
}
