module sdntamper

go 1.22
