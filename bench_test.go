package sdntamper

// One benchmark per table and figure of the paper's evaluation, plus
// micro-benchmarks of the hot paths and ablation benches for the design
// choices DESIGN.md calls out. The table/figure benches measure the cost
// of regenerating each artifact with this library (virtual-time work per
// wall-clock op); Table II's benches are themselves the measurement the
// paper reports (real CPU cost of the TopoGuard+ LLDP extensions).

import (
	"testing"
	"time"

	"sdntamper/internal/attack"
	"sdntamper/internal/core"
	"sdntamper/internal/dataplane"
	"sdntamper/internal/ids"
	"sdntamper/internal/link"
	"sdntamper/internal/lldp"
	"sdntamper/internal/obs/trace"
	"sdntamper/internal/openflow"
	"sdntamper/internal/packet"
	"sdntamper/internal/probe"
	"sdntamper/internal/sim"
	"sdntamper/internal/traffic"
)

// --- Table I: liveness probe options -----------------------------------

func benchProbe(b *testing.B, typ probe.Type) {
	b.Helper()
	s := core.NewFig2Scenario(1, core.NoDefenses())
	defer s.Close()
	if err := s.Run(2 * time.Second); err != nil {
		b.Fatal(err)
	}
	attacker := s.Net.Host(core.HostAttackerA)
	victim := s.Net.Host(core.HostVictim)
	zombie := s.Net.Host(core.HostClient)
	p := probe.New(s.Net.Kernel, attacker, typ,
		probe.WithZombie(probe.Zombie{MAC: zombie.MAC(), IP: zombie.IP(), Port: 9}))
	target := probe.Target{MAC: victim.MAC(), IP: victim.IP(), Port: 80}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		if err := p.Probe(target, 200*time.Millisecond, func(probe.Result) { done = true }); err != nil {
			b.Fatal(err)
		}
		if err := s.Run(2 * time.Second); err != nil {
			b.Fatal(err)
		}
		if !done {
			b.Fatal("probe did not resolve")
		}
	}
}

func BenchmarkTableI_ICMPPing(b *testing.B)    { benchProbe(b, probe.ICMPPing) }
func BenchmarkTableI_TCPSYN(b *testing.B)      { benchProbe(b, probe.TCPSYN) }
func BenchmarkTableI_ARPPing(b *testing.B)     { benchProbe(b, probe.ARPPing) }
func BenchmarkTableI_TCPIdleScan(b *testing.B) { benchProbe(b, probe.TCPIdleScan) }

// --- Table II: TopoGuard+ LLDP overhead (the real measurement) ---------

func BenchmarkTableII_LLDPConstructionPlain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := &lldp.Frame{ChassisID: 1, PortID: 2, TTLSecs: 120}
		_ = f.Marshal()
	}
}

func BenchmarkTableII_LLDPConstructionTGPlus(b *testing.B) {
	kc, err := lldp.NewKeychain([]byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	now := time.Unix(1700000000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := &lldp.Frame{ChassisID: 1, PortID: 2, TTLSecs: 120}
		f.Timestamp = kc.SealTimestamp(now)
		kc.Sign(f)
		_ = f.Marshal()
	}
}

func BenchmarkTableII_LLDPProcessingPlain(b *testing.B) {
	wire := (&lldp.Frame{ChassisID: 1, PortID: 2, TTLSecs: 120}).Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lldp.Unmarshal(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_LLDPProcessingTGPlus(b *testing.B) {
	kc, err := lldp.NewKeychain([]byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	now := time.Unix(1700000000, 0)
	f := &lldp.Frame{ChassisID: 1, PortID: 2, TTLSecs: 120}
	f.Timestamp = kc.SealTimestamp(now)
	kc.Sign(f)
	wire := f.Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := lldp.Unmarshal(wire)
		if err != nil {
			b.Fatal(err)
		}
		if err := kc.Verify(got); err != nil {
			b.Fatal(err)
		}
		if _, err := kc.OpenTimestamp(got.Timestamp); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table III: per-profile discovery rounds ----------------------------

func benchDiscoveryRound(b *testing.B, profile string) {
	b.Helper()
	var prof func() core.Defenses
	_ = prof
	rows := core.RunTableIII()
	var interval time.Duration
	for _, r := range rows {
		if r.Controller == profile {
			interval = r.DiscoveryInterval
		}
	}
	s := core.NewFig9Testbed(1, core.NoDefenses())
	defer s.Close()
	if err := s.Run(2 * time.Second); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Run(interval); err != nil {
			b.Fatal(err)
		}
	}
	if len(s.Controller().Links()) == 0 {
		b.Fatal("no links discovered")
	}
}

func BenchmarkTableIII_FloodlightRound(b *testing.B) { benchDiscoveryRound(b, "Floodlight") }
func BenchmarkTableIII_POXRound(b *testing.B)        { benchDiscoveryRound(b, "POX") }

// --- Figure 4: ifconfig identity-change distribution --------------------

func BenchmarkFig4_IdentityChangeSample(b *testing.B) {
	k := sim.New(sim.WithSeed(4))
	sampler := dataplane.DefaultIdentityChange()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sampler.Sample(k.Rand())
	}
}

// --- Figures 3 and 5-8: one complete port-probing hijack per op ---------

func BenchmarkFig5678_HijackRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		events, err := core.RunFig3Timeline(int64(i)+1, false)
		if err != nil {
			b.Fatal(err)
		}
		if len(events) != 6 {
			b.Fatal("incomplete timeline")
		}
	}
}

// benchHijackDistributions measures an 8-trial Figure 5-8 experiment end to
// end; the serial/parallel pair is the wall-clock speedup evidence recorded
// in BENCH_pr1.json.
func benchHijackDistributions(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		d, err := core.RunHijackDistributionsParallel(int64(i)*1000+1, 8, false, workers)
		if err != nil {
			b.Fatal(err)
		}
		if d.AttackerUp.N()+d.Failed != 8 {
			b.Fatalf("runs accounted = %d", d.AttackerUp.N()+d.Failed)
		}
	}
}

func BenchmarkFig5678_Distributions8Serial(b *testing.B)   { benchHijackDistributions(b, 1) }
func BenchmarkFig5678_Distributions8Parallel(b *testing.B) { benchHijackDistributions(b, 0) }

// --- Figures 10-13 ------------------------------------------------------

func BenchmarkFig10_LLIMeasurementRound(b *testing.B) {
	s := core.NewFig9Testbed(10, core.TopoGuardPlus())
	defer s.Close()
	if err := s.Run(2 * time.Second); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Run(15 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
	if len(s.LLI.Samples()) == 0 {
		b.Fatal("no LLI samples")
	}
}

func BenchmarkFig11_OOBDetectionRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig11(int64(i)+1, 2*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Alerts) == 0 {
			b.Fatal("attack not detected")
		}
	}
}

func BenchmarkFig12_InBandDetectionRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		alerts, err := core.RunFig12(int64(i)+1, time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if len(alerts) == 0 {
			b.Fatal("attack not detected")
		}
	}
}

// --- Section V-B2: IDS inspection throughput ----------------------------

func BenchmarkIDSInspectSYN(b *testing.B) {
	k := sim.New()
	sensor := ids.NewSensor(k)
	frame := packet.NewTCPSegment(
		packet.MustMAC("aa:aa:aa:aa:aa:aa"), packet.MustMAC("bb:bb:bb:bb:bb:bb"),
		packet.MustIPv4("10.0.0.1"), packet.MustIPv4("10.0.0.2"),
		40000, 80, packet.TCPSyn, 1, 0, nil).Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sensor.Inspect(frame)
	}
}

// --- Attack end-to-end benches ------------------------------------------

func BenchmarkOOBFabricationRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := core.NewFig9Testbed(int64(i)+1, core.BothBaselines())
		fab := attack.NewOOBFabrication(s.Net.Kernel,
			s.Net.Host(core.HostAttackerA), s.Net.Host(core.HostAttackerB), s.OOB,
			attack.FabricationConfig{UseAmnesia: true})
		if err := s.Run(2 * time.Second); err != nil {
			b.Fatal(err)
		}
		fab.Start()
		if err := s.Run(30 * time.Second); err != nil {
			b.Fatal(err)
		}
		if !s.Controller().HasLink(core.FabricatedLinkFig9()) {
			b.Fatal("fabrication failed")
		}
		s.Close()
	}
}

// --- Ablations ----------------------------------------------------------

func benchLLIAblation(b *testing.B, k float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := core.RunLLIAblation(int64(i)+1, []float64{k}, []int{100}, 3*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if !rows[0].Detected {
			b.Fatal("attack not detected")
		}
	}
}

func BenchmarkAblationLLIMultiplier1_5(b *testing.B) { benchLLIAblation(b, 1.5) }
func BenchmarkAblationLLIMultiplier3(b *testing.B)   { benchLLIAblation(b, 3) }

func BenchmarkAblationControlAveraging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunControlAveragingAblation(int64(i)+1, []int{1, 3}, 2*time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the substrate hot paths -------------------------

func BenchmarkOpenFlowMarshalPacketIn(b *testing.B) {
	data := make([]byte, 128)
	msg := &openflow.PacketIn{BufferID: openflow.NoBuffer, InPort: 1, Data: data}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = openflow.Marshal(uint32(i), msg)
	}
}

func BenchmarkOpenFlowUnmarshalPacketIn(b *testing.B) {
	wire := openflow.Marshal(1, &openflow.PacketIn{BufferID: openflow.NoBuffer, InPort: 1, Data: make([]byte, 128)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := openflow.Unmarshal(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowTableLookup(b *testing.B) {
	var tbl dataplane.FlowTable
	now := time.Unix(0, 0)
	for i := 0; i < 64; i++ {
		var mac packet.MAC
		mac[5] = byte(i)
		tbl.Apply(&openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Match:    openflow.Match{Wildcards: openflow.WildAll &^ openflow.WildEthDst, Fields: openflow.Fields{EthDst: mac}},
			Priority: 10,
			Actions:  []openflow.Action{openflow.Output(1)},
		}, now)
	}
	fields := openflow.Fields{EthDst: packet.MAC{0, 0, 0, 0, 0, 63}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl.Lookup(fields) == nil {
			b.Fatal("miss")
		}
	}
}

func BenchmarkSimKernelEventThroughput(b *testing.B) {
	// b.N can exceed the kernel's default runaway guard on fast hosts.
	k := sim.New(sim.WithEventLimit(^uint64(0)))
	var next func()
	count := 0
	next = func() {
		count++
		if count < b.N {
			k.Schedule(time.Microsecond, next)
		}
	}
	b.ResetTimer()
	k.Schedule(0, next)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkLinkFrameDelivery(b *testing.B) {
	k := sim.New()
	l := link.NewLink(k, sim.Const(time.Microsecond))
	h := dataplane.NewHost(k, "h", packet.MustMAC("aa:aa:aa:aa:aa:aa"), packet.MustIPv4("10.0.0.1"), l, link.EndB)
	_ = h
	frame := packet.NewARPRequest(packet.MustMAC("bb:bb:bb:bb:bb:bb"), packet.MustIPv4("10.0.0.2"), packet.MustIPv4("10.0.0.1")).Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Send(link.EndA, frame)
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Allocation-gated hot-path benchmarks (CI enforces 0 allocs/op) ------

// BenchmarkSchedule measures the steady-state schedule->fire cycle of the
// event kernel. After warmup every fired event's slot is recycled through
// the kernel free list, so the loop must run allocation-free.
func BenchmarkSchedule(b *testing.B) {
	k := sim.New(sim.WithEventLimit(^uint64(0)))
	count, limit := 0, 0
	var next func()
	next = func() {
		count++
		if count < limit {
			k.Schedule(time.Microsecond, next)
		}
	}
	// Warm the slot free list and the heap backing array.
	limit = 256
	k.Schedule(0, next)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	count, limit = 0, b.N
	b.ReportAllocs()
	b.ResetTimer()
	k.Schedule(0, next)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScheduleTraced is BenchmarkSchedule with a span flight
// recorder attached to the kernel: causal context is captured on every
// schedule and restored on every fire, but no spans are emitted (the
// benchmark events carry no trace context), which is the steady-state
// cost tracing adds to the kernel hot path. It must also stay
// allocation-free.
func BenchmarkScheduleTraced(b *testing.B) {
	k := sim.New(sim.WithEventLimit(^uint64(0)))
	k.SetTracer(trace.NewRecorder(0))
	count, limit := 0, 0
	var next func()
	next = func() {
		count++
		if count < limit {
			k.Schedule(time.Microsecond, next)
		}
	}
	limit = 256
	k.Schedule(0, next)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	count, limit = 0, b.N
	b.ReportAllocs()
	b.ResetTimer()
	k.Schedule(0, next)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTrafficBurst measures the traffic engine's per-packet
// overhead: flow admission, batched pump events and frame construction
// into the host's reused transmit buffer. The wire's carrier is down so
// Send drops without the per-frame delivery copy (that copy is the
// link's cost, benchmarked elsewhere) — everything the engine itself
// does per packet must be allocation-free: package-level event
// functions recycle kernel slots, payloads are pooled, and flow state
// is two integers.
func BenchmarkTrafficBurst(b *testing.B) {
	k := sim.New(sim.WithEventLimit(^uint64(0)))
	l := link.NewLink(k, sim.Const(time.Microsecond))
	h := dataplane.NewHost(k, "h", packet.MustMAC("aa:aa:aa:aa:aa:aa"), packet.MustIPv4("10.0.0.1"), l, link.EndB)
	l.SetCarrier(link.EndA, false)
	g := traffic.NewGenerator(h, packet.MustMAC("bb:bb:bb:bb:bb:bb"), packet.MustIPv4("10.0.0.2"), 9,
		traffic.Profile{PayloadBytes: 1000}, 1, 0)
	// Warm the kernel free list and heap backing array.
	g.Burst(256)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	g.Burst(b.N) // default profile: one packet per flow
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	if got := g.Counters().Packets; got < uint64(b.N) {
		b.Fatalf("drained %d of %d packets", got, b.N)
	}
}

// BenchmarkFramePath measures building one complete Ethernet/IPv4/TCP
// frame layer by layer into a reused scratch buffer — the host transmit
// path — and marshaling it into a PacketIn the way a switch's control
// path does. Both halves reuse their buffers, so the loop must run
// allocation-free.
func BenchmarkFramePath(b *testing.B) {
	src, dst := packet.MustMAC("aa:aa:aa:aa:aa:aa"), packet.MustMAC("bb:bb:bb:bb:bb:bb")
	ip := packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, ID: 7,
		Src: packet.MustIPv4("10.0.0.1"), Dst: packet.MustIPv4("10.0.0.2")}
	seg := packet.TCP{SrcPort: 40000, DstPort: 80, Seq: 1, Flags: packet.TCPSyn, Window: 65535}
	pktIn := openflow.PacketIn{BufferID: openflow.NoBuffer, InPort: 1}
	frameBuf := make([]byte, 0, 128)
	ctlBuf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frameBuf = packet.AppendEthernetHeader(frameBuf[:0], dst, src, packet.EtherTypeIPv4)
		ipStart := len(frameBuf)
		frameBuf = ip.AppendHeaderTo(frameBuf)
		frameBuf = seg.AppendTo(frameBuf)
		packet.FinishIPv4(frameBuf, ipStart)
		pktIn.Data = frameBuf
		ctlBuf = openflow.AppendMarshal(ctlBuf[:0], uint32(i), &pktIn)
	}
	if len(ctlBuf) == 0 {
		b.Fatal("empty marshal")
	}
}
