// Command topotamper runs the paper's attack scenarios interactively:
// pick a scenario, a defense stack, and an attack, and watch the
// controller's log (including any defense alerts) as the virtual network
// runs.
//
//	topotamper -scenario fig9 -defense topoguard+ -attack oob-amnesia -duration 2m
//	topotamper -scenario fig2 -defense both -attack port-probing
//	topotamper -scenario fig1 -defense topoguard -attack naive-fabrication
//
// With -chaos a randomized fault plan of the named class (flap-storm,
// loss-episode, latency-spike, disconnect) is injected after warmup, with
// or without an attack running:
//
//	topotamper -scenario fig9 -attack none -chaos disconnect -duration 3m
//
// With -trials N (N > 1) the same configuration runs headlessly across N
// consecutive seeds on the parallel executor and prints one summary row
// per trial, merged in seed order:
//
//	topotamper -scenario fig2 -defense both -attack port-probing -trials 20 -parallel 0
//
// With -failover the clustered control plane replaces the single
// controller: two replicas split mastership of the Figure 9 switches,
// replica 1 is crashed mid-run, and the deterministic failover timeline
// (election, role handover, state replay, rediscovery, LLI re-learn) is
// printed:
//
//	topotamper -failover -seed 21
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sdntamper/internal/attack"
	"sdntamper/internal/chaos"
	"sdntamper/internal/controller"
	"sdntamper/internal/core"
	"sdntamper/internal/dataplane"
	"sdntamper/internal/exp"
	"sdntamper/internal/obs"
	spantrace "sdntamper/internal/obs/trace"
	"sdntamper/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topotamper:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("topotamper", flag.ContinueOnError)
	scenarioName := fs.String("scenario", "fig9", "topology: fig1, fig2, fig9")
	defenseName := fs.String("defense", "topoguard+", "defense stack: none, topoguard, sphinx, both, topoguard+, ratemon, full")
	attackName := fs.String("attack", "oob-amnesia", "attack: none, naive-fabrication, amnesia (alias oob-amnesia), inband-amnesia, naive-hijack, port-probing, alert-flood, synflood, saturation")
	duration := fs.Duration("duration", 2*time.Minute, "virtual time to run")
	seed := fs.Int64("seed", 1, "simulation seed")
	quiet := fs.Bool("quiet", false, "suppress the controller log, print only the summary")
	tracePath := fs.String("trace", "", "record causal spans and write them to this file (.jsonl for JSON Lines, anything else for Chrome trace_event JSON)")
	traceFrames := fs.Int("tapframes", 0, "tap the attacker/victim NICs and print the last N captured frames")
	pcapPath := fs.String("pcap", "", "also write tapped frames to this file in libpcap format")
	dotPath := fs.String("dot", "", "write the final topology view as Graphviz dot to this file")
	chaosClass := fs.String("chaos", "", "inject a randomized fault plan of this class after warmup: flap-storm, loss-episode, latency-spike, disconnect")
	failover := fs.Bool("failover", false, "run the clustered-controller failover demo (crash the master of switches 3-4 under TOPOGUARD+) and exit")
	trials := fs.Int("trials", 1, "seeded trials (seed, seed+1, ...); >1 runs a headless fleet, one summary row per trial")
	parallel := fs.Int("parallel", 0, "worker goroutines for the trial fleet (0 = one per CPU, 1 = serial)")
	metricsPath := fs.String("metrics", "", "write the final metrics snapshot to this file (.csv for CSV, anything else for JSON Lines); fleets merge per-trial registries in seed order")
	eventsPath := fs.String("events", "", "write the retained structured event stream to this file as JSON Lines")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *failover {
		return runFailoverDemo(*seed)
	}
	if *trials > 1 {
		if *chaosClass != "" {
			return fmt.Errorf("-chaos is a single-run option; for multi-trial fault injection use benchharness -experiment chaos")
		}
		return runFleet(*scenarioName, *defenseName, *attackName, *duration, *seed, *trials, *parallel, *metricsPath, *eventsPath)
	}

	logf := func(format string, a ...any) {
		if !*quiet {
			fmt.Printf("[ctl] "+format+"\n", a...)
		}
	}
	s, err := buildScenario(*scenarioName, *defenseName, *seed, logf)
	if err != nil {
		return err
	}
	defer s.Close()

	fmt.Printf("scenario=%s defense=%s attack=%s seed=%d duration=%s\n",
		*scenarioName, *defenseName, *attackName, *seed, *duration)

	var recorder *spantrace.Recorder
	if *tracePath != "" {
		recorder = s.Net.EnableTrace(0)
	}

	var capture *trace.Log
	var pcap *trace.Pcap
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			return err
		}
		defer f.Close()
		pcap, err = trace.NewPcap(s.Net.Kernel, f)
		if err != nil {
			return err
		}
	}
	if *traceFrames > 0 {
		capture = trace.NewLog(s.Net.Kernel, *traceFrames)
	}
	if capture != nil || pcap != nil {
		for _, name := range []string{core.HostAttackerA, core.HostAttackerB, core.HostVictim} {
			h := s.Net.Host(name)
			if h == nil {
				continue
			}
			if capture != nil {
				capture.TapHost(h, name)
			}
			if pcap != nil {
				pcap.TapHost(h)
			}
		}
	}

	// Boot and warm host bindings.
	if err := s.Run(3 * time.Second); err != nil {
		return err
	}
	warm(s)
	if err := s.Run(3 * time.Second); err != nil {
		return err
	}

	attackLogf := func(format string, a ...any) { fmt.Printf(format+"\n", a...) }
	if err := launchAttack(s, *scenarioName, *attackName, attackLogf, nil); err != nil {
		return err
	}
	if *chaosClass != "" {
		if err := injectChaos(s, *chaosClass, *seed); err != nil {
			return err
		}
	}
	if err := s.Run(*duration); err != nil {
		return err
	}

	fmt.Println("\n--- final state ---")
	fmt.Println("links:")
	for _, l := range s.Controller().Links() {
		fmt.Printf("  %s\n", l)
	}
	fmt.Println("hosts:")
	fmt.Print(indent(s.Controller().HostTableString()))
	alerts := s.Controller().Alerts()
	fmt.Printf("alerts: %d\n", len(alerts))
	for _, a := range alerts {
		fmt.Printf("  %s\n", a)
	}
	if capture != nil {
		fmt.Printf("\n--- last %d of %d captured frames ---\n", len(capture.Events()), capture.Total())
		fmt.Print(capture.String())
	}
	if pcap != nil {
		if err := pcap.Err(); err != nil {
			return err
		}
		fmt.Printf("pcap: %d frames written to %s\n", pcap.Frames(), *pcapPath)
	}
	if *dotPath != "" {
		dot := s.Controller().TopologyDot(nil)
		if err := os.WriteFile(*dotPath, []byte(dot), 0o644); err != nil {
			return err
		}
		fmt.Printf("topology view written to %s\n", *dotPath)
	}
	if recorder != nil {
		if err := exportSpans(recorder, *tracePath); err != nil {
			return err
		}
	}
	if err := exportObservability(s.Net.Metrics(), *metricsPath, *eventsPath); err != nil {
		return err
	}
	return nil
}

// exportSpans writes the flight recorder's span stream to path (.jsonl
// for JSON Lines, anything else for Chrome trace_event JSON, viewable
// in chrome://tracing or Perfetto) and prints the causal chain of the
// first blocked or flagged verdict — the forensic record of how a
// defense reached its decision.
func exportSpans(rec *spantrace.Recorder, path string) error {
	spans := spantrace.Merge(rec)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = spantrace.WriteJSONL(f, spans)
	} else {
		err = spantrace.WriteChrome(f, spans)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d spans written to %s (%d dropped from the ring)\n", len(spans), path, rec.Dropped())
	verdicts := spantrace.FindByName(spans, "verdict.block")
	if len(verdicts) == 0 {
		verdicts = spantrace.FindByName(spans, "verdict.flag")
	}
	if len(verdicts) > 0 {
		chain := spantrace.Chain(spans, verdicts[0].ID)
		names := make([]string, len(chain))
		for i, sp := range chain {
			names[i] = sp.Name
		}
		fmt.Printf("first adverse verdict (%s) causal chain: %s\n", verdicts[0].Detail, strings.Join(names, " -> "))
		fmt.Printf("its timeline holds %d spans\n", len(spantrace.Timeline(spans, verdicts[0].ID)))
	}
	return nil
}

// exportObservability writes a registry's snapshot and/or event stream to
// the requested files. Empty paths are skipped; .csv selects the CSV
// snapshot format and anything else JSON Lines.
func exportObservability(reg *obs.Registry, metricsPath, eventsPath string) error {
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		snap := reg.Snapshot()
		if strings.HasSuffix(metricsPath, ".csv") {
			err = snap.WriteCSV(f)
		} else {
			err = snap.WriteJSONL(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s\n", metricsPath)
	}
	if eventsPath != "" {
		f, err := os.Create(eventsPath)
		if err != nil {
			return err
		}
		err = obs.WriteEventsJSONL(f, reg.Events().Events())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("event stream written to %s (%d retained of %d total)\n",
			eventsPath, len(reg.Events().Events()), reg.Events().Total())
	}
	return nil
}

// runFailoverDemo runs the clustered failover experiment once and
// prints the deterministic timeline: the Figure 9 testbed mastered by
// two replicas (switches 1-2 on replica 0, 3-4 on replica 1), replica 1
// crashed after warmup, the survivor elected, replayed, and verified.
func runFailoverDemo(seed int64) error {
	fmt.Printf("failover demo: 2 replicas over fig9, full TOPOGUARD+, seed=%d\n", seed)
	res, err := core.RunFailover(seed, 2, true)
	if err != nil {
		return err
	}
	fmt.Println("replica 1 (master of switches 3-4) crashed; failover timeline:")
	for _, line := range res.Timeline {
		fmt.Printf("  %s\n", line)
	}
	fmt.Printf("reconvergence        : %s\n", time.Duration(res.ReconvergenceNs).Truncate(time.Microsecond))
	fmt.Printf("LLI blind window     : %s\n", time.Duration(res.BlindWindowNs).Truncate(time.Microsecond))
	fmt.Printf("surviving view       : %d directed links\n", res.Links)
	fmt.Printf("pending probes leaked: %d\n", res.PendingLeaked)
	fmt.Printf("spurious alerts      : %d\n", res.FalseAlerts)
	return nil
}

// injectChaos arms a randomized fault plan of the named class on the
// scenario's network, seeded so the same invocation replays the same
// fault timeline. The plan starts immediately; the scenario keeps running
// for the full -duration, so pick a duration longer than the printed span
// to watch the topology recover.
func injectChaos(s *core.Scenario, className string, seed int64) error {
	classes, err := chaos.ParseClasses([]string{className})
	if err != nil {
		return err
	}
	inj := chaos.NewInjector(s.Net, seed)
	plan := inj.PlanFor(classes[0])
	if len(plan) == 0 {
		return fmt.Errorf("no %s fault plan for this scenario", className)
	}
	inj.Apply(plan)
	fmt.Printf("[chaos] injected %d %s fault(s), active span %s\n",
		len(plan), className, plan.End().Truncate(time.Millisecond))
	return nil
}

func withLog(logf func(string, ...any)) []controller.Option {
	return []controller.Option{controller.WithLogf(logf)}
}

// buildScenario constructs the named topology with the named defense stack.
func buildScenario(scenarioName, defenseName string, seed int64, logf func(string, ...any)) (*core.Scenario, error) {
	defenses, err := parseDefense(defenseName)
	if err != nil {
		return nil, err
	}
	switch scenarioName {
	case "fig1":
		return core.NewFig1Scenario(seed, defenses, withLog(logf)...), nil
	case "fig2":
		return core.NewFig2Scenario(seed, defenses, withLog(logf)...), nil
	case "fig9":
		return core.NewFig9Testbed(seed, defenses, withLog(logf)...), nil
	default:
		return nil, fmt.Errorf("unknown scenario %q", scenarioName)
	}
}

// trialOutcome is the per-seed summary a fleet trial reports.
type trialOutcome struct {
	seed   int64
	links  int
	hosts  int
	alerts int
	ackAt  time.Time // controller ack of a completed hijack; zero if none
}

// runTrial executes one headless trial: build, warm, attack, run,
// summarize. The returned registry is the trial's private metrics store,
// merged in seed order by the fleet path.
func runTrial(scenarioName, defenseName, attackName string, duration time.Duration, seed int64) (trialOutcome, *obs.Registry, error) {
	out := trialOutcome{seed: seed}
	discard := func(string, ...any) {}
	s, err := buildScenario(scenarioName, defenseName, seed, discard)
	if err != nil {
		return out, nil, err
	}
	defer s.Close()
	if err := s.Run(3 * time.Second); err != nil {
		return out, nil, err
	}
	warm(s)
	if err := s.Run(3 * time.Second); err != nil {
		return out, nil, err
	}
	if err := launchAttack(s, scenarioName, attackName, discard, &out.ackAt); err != nil {
		return out, nil, err
	}
	if err := s.Run(duration); err != nil {
		return out, nil, err
	}
	out.links = len(s.Controller().Links())
	out.hosts = len(s.Controller().Hosts())
	out.alerts = len(s.Controller().Alerts())
	return out, s.Net.Metrics(), nil
}

// runFleet runs the same configuration across consecutive seeds on the
// parallel executor and prints one row per trial, merged in seed order.
func runFleet(scenarioName, defenseName, attackName string, duration time.Duration, seed int64, trials, workers int, metricsPath, eventsPath string) error {
	fmt.Printf("fleet: %d trials, scenario=%s defense=%s attack=%s duration=%s seeds=%d..%d\n",
		trials, scenarioName, defenseName, attackName, duration, seed, seed+int64(trials)-1)
	results, merged, err := exp.RunInstrumented(exp.Seeds(seed, trials, 1), workers, func(s int64) (trialOutcome, *obs.Registry, error) {
		return runTrial(scenarioName, defenseName, attackName, duration, s)
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-7s %-7s %-8s %s\n", "seed", "links", "hosts", "alerts", "hijack ack")
	hijacks := 0
	for _, r := range results {
		ack := "-"
		if !r.ackAt.IsZero() {
			hijacks++
			ack = r.ackAt.Format("15:04:05.000")
		}
		fmt.Printf("%-8d %-7d %-7d %-8d %s\n", r.seed, r.links, r.hosts, r.alerts, ack)
	}
	if attackName == "port-probing" {
		fmt.Printf("hijacks completed: %d/%d\n", hijacks, trials)
	}
	return exportObservability(merged, metricsPath, eventsPath)
}

func warm(s *core.Scenario) {
	pairs := [][2]string{
		{core.HostClient, core.HostServer},
		{core.HostAttackerA, core.HostClient},
		{core.HostAttackerB, core.HostServer},
		{core.HostClient, core.HostVictim},
		{core.HostAttackerA, core.HostVictim},
	}
	for _, p := range pairs {
		from, to := s.Net.Host(p[0]), s.Net.Host(p[1])
		if from == nil || to == nil {
			continue
		}
		from.ARPPing(to.IP(), time.Second, func(dataplane.ProbeResult) {})
	}
}

// launchAttack arms the named attack. Progress goes through logf so fleet
// trials stay silent; ackAt (optional) receives the controller-ack time of
// a completed port-probing hijack.
func launchAttack(s *core.Scenario, scenarioName, attackName string, logf func(string, ...any), ackAt *time.Time) error {
	a := s.Net.Host(core.HostAttackerA)
	b := s.Net.Host(core.HostAttackerB)
	switch attackName {
	case "none":
		return nil
	case "naive-fabrication", "oob-amnesia", "amnesia":
		if s.OOB == nil || a == nil || b == nil {
			return fmt.Errorf("%s needs a scenario with colluding hosts and an OOB channel (fig1, fig9)", attackName)
		}
		attack.NewOOBFabrication(s.Net.Kernel, a, b, s.OOB, attack.FabricationConfig{
			UseAmnesia:      attackName != "naive-fabrication",
			BridgeDataplane: true,
		}).Start()
	case "inband-amnesia":
		if a == nil || b == nil {
			return fmt.Errorf("inband-amnesia needs colluding hosts (fig9)")
		}
		attack.NewInBandFabrication(s.Net.Kernel, a, b, 0).Start()
	case "naive-hijack":
		victim := s.Net.Host(core.HostVictim)
		if victim == nil || a == nil {
			return fmt.Errorf("naive-hijack needs the fig2 scenario")
		}
		attack.NaiveHijack(s.Net.Kernel, a, victim.MAC(), victim.IP())
	case "port-probing":
		victim := s.Net.Host(core.HostVictim)
		if victim == nil || a == nil || scenarioName != "fig2" {
			return fmt.Errorf("port-probing needs the fig2 scenario")
		}
		hj := attack.NewHijack(s.Net.Kernel, a, victim.IP(), attack.DefaultHijackConfig(core.AttackerLocFig2()))
		s.Controller().Register(hj)
		hj.Start(func(tl attack.Timeline) {
			if ackAt != nil {
				*ackAt = tl.ControllerAck
			}
			logf("[attack] hijack complete: controller ack at %s", tl.ControllerAck.Format("15:04:05.000"))
		})
		// The victim migrates 10 virtual seconds in.
		s.Net.Kernel.Schedule(10*time.Second, func() {
			logf("[victim] beginning migration (interface down)")
			victim.InterfaceDown()
		})
	case "synflood", "saturation":
		server := s.Net.Host(core.HostServer)
		if server == nil || a == nil || b == nil {
			return fmt.Errorf("%s needs the fig9 scenario (attackers flood the server)", attackName)
		}
		// Rates sized to exceed the default monitor threshold (80% of a
		// 10 Mbps access link = 1 MB/s): 25k SYN/s × 54 B ≈ 1.35 MB/s,
		// 1k datagrams/s × 1442 B ≈ 1.4 MB/s.
		variant := attack.SYNFlood
		pps := 25000.0
		if attackName == "saturation" {
			variant = attack.LinkSaturation
			pps = 1000
		}
		flood := attack.NewDoS([]*dataplane.Host{a, b}, server.MAC(), server.IP(),
			attack.DoSConfig{Variant: variant, PacketsPerSec: pps, Seed: 0})
		flood.Announce()
		flood.Start()
		logf("[attack] distributed %s from %s and %s against %s", attackName,
			core.HostAttackerA, core.HostAttackerB, core.HostServer)
	case "alert-flood":
		victim := s.Net.Host(core.HostVictim)
		client := s.Net.Host(core.HostClient)
		if victim == nil || client == nil || a == nil {
			return fmt.Errorf("alert-flood needs the fig2 scenario")
		}
		attack.NewAlertFlood(s.Net.Kernel, []*dataplane.Host{a}, []attack.SpoofTarget{
			{MAC: victim.MAC(), IP: victim.IP()},
			{MAC: client.MAC(), IP: client.IP()},
		}, 10*time.Millisecond).Start()
	default:
		return fmt.Errorf("unknown attack %q", attackName)
	}
	return nil
}

func parseDefense(name string) (core.Defenses, error) {
	switch name {
	case "none":
		return core.NoDefenses(), nil
	case "topoguard":
		return core.TopoGuardOnly(), nil
	case "sphinx":
		return core.SphinxOnly(), nil
	case "both":
		return core.BothBaselines(), nil
	case "topoguard+", "tgplus":
		return core.TopoGuardPlus(), nil
	case "ratemon":
		return core.RateMonOnly(), nil
	case "full", "fullstack":
		return core.FullStack(), nil
	default:
		return core.Defenses{}, fmt.Errorf("unknown defense %q", name)
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
