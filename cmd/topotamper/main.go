// Command topotamper runs the paper's attack scenarios interactively:
// pick a scenario, a defense stack, and an attack, and watch the
// controller's log (including any defense alerts) as the virtual network
// runs.
//
//	topotamper -scenario fig9 -defense topoguard+ -attack oob-amnesia -duration 2m
//	topotamper -scenario fig2 -defense both -attack port-probing
//	topotamper -scenario fig1 -defense topoguard -attack naive-fabrication
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sdntamper/internal/attack"
	"sdntamper/internal/controller"
	"sdntamper/internal/core"
	"sdntamper/internal/dataplane"
	"sdntamper/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topotamper:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("topotamper", flag.ContinueOnError)
	scenarioName := fs.String("scenario", "fig9", "topology: fig1, fig2, fig9")
	defenseName := fs.String("defense", "topoguard+", "defense stack: none, topoguard, sphinx, both, topoguard+")
	attackName := fs.String("attack", "oob-amnesia", "attack: none, naive-fabrication, oob-amnesia, inband-amnesia, naive-hijack, port-probing, alert-flood")
	duration := fs.Duration("duration", 2*time.Minute, "virtual time to run")
	seed := fs.Int64("seed", 1, "simulation seed")
	quiet := fs.Bool("quiet", false, "suppress the controller log, print only the summary")
	traceFrames := fs.Int("trace", 0, "tap the attacker/victim NICs and print the last N captured frames")
	pcapPath := fs.String("pcap", "", "also write tapped frames to this file in libpcap format")
	dotPath := fs.String("dot", "", "write the final topology view as Graphviz dot to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	defenses, err := parseDefense(*defenseName)
	if err != nil {
		return err
	}
	logf := func(format string, a ...any) {
		if !*quiet {
			fmt.Printf("[ctl] "+format+"\n", a...)
		}
	}

	var s *core.Scenario
	switch *scenarioName {
	case "fig1":
		s = core.NewFig1Scenario(*seed, defenses, withLog(logf)...)
	case "fig2":
		s = core.NewFig2Scenario(*seed, defenses, withLog(logf)...)
	case "fig9":
		s = core.NewFig9Testbed(*seed, defenses, withLog(logf)...)
	default:
		return fmt.Errorf("unknown scenario %q", *scenarioName)
	}
	defer s.Close()

	fmt.Printf("scenario=%s defense=%s attack=%s seed=%d duration=%s\n",
		*scenarioName, *defenseName, *attackName, *seed, *duration)

	var capture *trace.Log
	var pcap *trace.Pcap
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			return err
		}
		defer f.Close()
		pcap, err = trace.NewPcap(s.Net.Kernel, f)
		if err != nil {
			return err
		}
	}
	if *traceFrames > 0 {
		capture = trace.NewLog(s.Net.Kernel, *traceFrames)
	}
	if capture != nil || pcap != nil {
		for _, name := range []string{core.HostAttackerA, core.HostAttackerB, core.HostVictim} {
			h := s.Net.Host(name)
			if h == nil {
				continue
			}
			if capture != nil {
				capture.TapHost(h, name)
			}
			if pcap != nil {
				pcap.TapHost(h)
			}
		}
	}

	// Boot and warm host bindings.
	if err := s.Run(3 * time.Second); err != nil {
		return err
	}
	warm(s)
	if err := s.Run(3 * time.Second); err != nil {
		return err
	}

	if err := launchAttack(s, *scenarioName, *attackName); err != nil {
		return err
	}
	if err := s.Run(*duration); err != nil {
		return err
	}

	fmt.Println("\n--- final state ---")
	fmt.Println("links:")
	for _, l := range s.Controller().Links() {
		fmt.Printf("  %s\n", l)
	}
	fmt.Println("hosts:")
	fmt.Print(indent(s.Controller().HostTableString()))
	alerts := s.Controller().Alerts()
	fmt.Printf("alerts: %d\n", len(alerts))
	for _, a := range alerts {
		fmt.Printf("  %s\n", a)
	}
	if capture != nil {
		fmt.Printf("\n--- last %d of %d captured frames ---\n", len(capture.Events()), capture.Total())
		fmt.Print(capture.String())
	}
	if pcap != nil {
		if err := pcap.Err(); err != nil {
			return err
		}
		fmt.Printf("pcap: %d frames written to %s\n", pcap.Frames(), *pcapPath)
	}
	if *dotPath != "" {
		dot := s.Controller().TopologyDot(nil)
		if err := os.WriteFile(*dotPath, []byte(dot), 0o644); err != nil {
			return err
		}
		fmt.Printf("topology view written to %s\n", *dotPath)
	}
	return nil
}

func withLog(logf func(string, ...any)) []controller.Option {
	return []controller.Option{controller.WithLogf(logf)}
}

func warm(s *core.Scenario) {
	pairs := [][2]string{
		{core.HostClient, core.HostServer},
		{core.HostAttackerA, core.HostClient},
		{core.HostAttackerB, core.HostServer},
		{core.HostClient, core.HostVictim},
		{core.HostAttackerA, core.HostVictim},
	}
	for _, p := range pairs {
		from, to := s.Net.Host(p[0]), s.Net.Host(p[1])
		if from == nil || to == nil {
			continue
		}
		from.ARPPing(to.IP(), time.Second, func(dataplane.ProbeResult) {})
	}
}

func launchAttack(s *core.Scenario, scenarioName, attackName string) error {
	a := s.Net.Host(core.HostAttackerA)
	b := s.Net.Host(core.HostAttackerB)
	switch attackName {
	case "none":
		return nil
	case "naive-fabrication", "oob-amnesia":
		if s.OOB == nil || a == nil || b == nil {
			return fmt.Errorf("%s needs a scenario with colluding hosts and an OOB channel (fig1, fig9)", attackName)
		}
		attack.NewOOBFabrication(s.Net.Kernel, a, b, s.OOB, attack.FabricationConfig{
			UseAmnesia:      attackName == "oob-amnesia",
			BridgeDataplane: true,
		}).Start()
	case "inband-amnesia":
		if a == nil || b == nil {
			return fmt.Errorf("inband-amnesia needs colluding hosts (fig9)")
		}
		attack.NewInBandFabrication(s.Net.Kernel, a, b, 0).Start()
	case "naive-hijack":
		victim := s.Net.Host(core.HostVictim)
		if victim == nil || a == nil {
			return fmt.Errorf("naive-hijack needs the fig2 scenario")
		}
		attack.NaiveHijack(s.Net.Kernel, a, victim.MAC(), victim.IP())
	case "port-probing":
		victim := s.Net.Host(core.HostVictim)
		if victim == nil || a == nil || scenarioName != "fig2" {
			return fmt.Errorf("port-probing needs the fig2 scenario")
		}
		hj := attack.NewHijack(s.Net.Kernel, a, victim.IP(), attack.DefaultHijackConfig(core.AttackerLocFig2()))
		s.Controller().Register(hj)
		hj.Start(func(tl attack.Timeline) {
			fmt.Printf("[attack] hijack complete: controller ack at %s\n", tl.ControllerAck.Format("15:04:05.000"))
		})
		// The victim migrates 10 virtual seconds in.
		s.Net.Kernel.Schedule(10*time.Second, func() {
			fmt.Println("[victim] beginning migration (interface down)")
			victim.InterfaceDown()
		})
	case "alert-flood":
		victim := s.Net.Host(core.HostVictim)
		client := s.Net.Host(core.HostClient)
		if victim == nil || client == nil || a == nil {
			return fmt.Errorf("alert-flood needs the fig2 scenario")
		}
		attack.NewAlertFlood(s.Net.Kernel, []*dataplane.Host{a}, []attack.SpoofTarget{
			{MAC: victim.MAC(), IP: victim.IP()},
			{MAC: client.MAC(), IP: client.IP()},
		}, 10*time.Millisecond).Start()
	default:
		return fmt.Errorf("unknown attack %q", attackName)
	}
	return nil
}

func parseDefense(name string) (core.Defenses, error) {
	switch name {
	case "none":
		return core.NoDefenses(), nil
	case "topoguard":
		return core.TopoGuardOnly(), nil
	case "sphinx":
		return core.SphinxOnly(), nil
	case "both":
		return core.BothBaselines(), nil
	case "topoguard+", "tgplus":
		return core.TopoGuardPlus(), nil
	default:
		return core.Defenses{}, fmt.Errorf("unknown defense %q", name)
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
