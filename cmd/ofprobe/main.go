// Command ofprobe speaks the repository's OpenFlow dialect over real TCP:
// point it at an ofnet endpoint and it performs a Hello/Echo exchange and
// prints every message it sees. With -selftest it spins up a local echo
// server first, so the wire path can be demonstrated with no external
// dependencies:
//
//	ofprobe -selftest
//	ofprobe -addr 127.0.0.1:6653 -echo 3
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sdntamper/internal/ofnet"
	"sdntamper/internal/openflow"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ofprobe:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ofprobe", flag.ContinueOnError)
	addr := fs.String("addr", "", "OpenFlow endpoint to probe (host:port)")
	echoes := fs.Int("echo", 3, "number of echo round trips")
	dpid := fs.Uint64("dpid", 0x99, "datapath id to present if the peer asks for features")
	selftest := fs.Bool("selftest", false, "start a local echo server and probe it")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *selftest {
		srv, err := ofnet.Listen("127.0.0.1:0", func(conn *ofnet.Conn) {
			if err := conn.Send(0, &openflow.Hello{}); err != nil {
				return
			}
			for {
				xid, m, err := conn.Receive()
				if err != nil {
					return
				}
				switch msg := m.(type) {
				case *openflow.Hello:
					// handshake complete
				case *openflow.EchoRequest:
					if err := conn.Send(xid, &openflow.EchoReply{Data: msg.Data}); err != nil {
						return
					}
				}
			}
		})
		if err != nil {
			return err
		}
		defer srv.Shutdown()
		*addr = srv.Addr().String()
		fmt.Printf("selftest server listening on %s\n", *addr)
	}
	if *addr == "" {
		return fmt.Errorf("either -addr or -selftest is required")
	}

	conn, err := ofnet.Dial(*addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Printf("connected to %s\n", *addr)

	if err := conn.Send(1, &openflow.Hello{}); err != nil {
		return err
	}
	fmt.Println("-> Hello")

	// The probe doubles as a minimal switch agent: it answers the peer's
	// handshake (FeaturesRequest) and prints whatever else arrives (e.g.
	// a controller's immediate LLDP Packet-Out probes), while measuring
	// echo round trips of its own.
	for i := 0; i < *echoes; i++ {
		payload := []byte(fmt.Sprintf("probe-%d", i))
		start := time.Now()
		wantXID := uint32(10 + i)
		if err := conn.Send(wantXID, &openflow.EchoRequest{Data: payload}); err != nil {
			return err
		}
		for {
			xid, m, err := conn.Receive()
			if err != nil {
				return err
			}
			switch msg := m.(type) {
			case *openflow.EchoReply:
				if xid != wantXID || string(msg.Data) != string(payload) {
					return fmt.Errorf("echo mismatch: xid=%d data=%q", xid, msg.Data)
				}
				fmt.Printf("echo %d: %s round trip (xid %d)\n", i, time.Since(start).Truncate(time.Microsecond), xid)
			case *openflow.EchoRequest:
				if err := conn.Send(xid, &openflow.EchoReply{Data: msg.Data}); err != nil {
					return err
				}
				continue
			case *openflow.FeaturesRequest:
				fmt.Printf("<- FeaturesRequest; presenting as switch 0x%x\n", *dpid)
				if err := conn.Send(xid, &openflow.FeaturesReply{
					DatapathID: *dpid,
					Ports:      []openflow.PortDesc{{No: 1, Name: "probe-eth1", Up: true}},
				}); err != nil {
					return err
				}
				continue
			case *openflow.PacketOut:
				fmt.Printf("<- PacketOut (%d bytes dataplane payload, %d actions)\n", len(msg.Data), len(msg.Actions))
				continue
			default:
				fmt.Printf("<- %s (xid %d)\n", m.MessageType(), xid)
				continue
			}
			break
		}
	}
	fmt.Println("probe complete")
	return nil
}
