// Command benchharness regenerates every table and figure of the paper's
// evaluation and prints them in the shape the paper reports. Run with no
// arguments for everything, or select one experiment:
//
//	benchharness -experiment table1 -seed 7
//	benchharness -experiment fig11 -runs 200
//
// Absolute timings for Table II depend on the machine; every other output
// is produced on the deterministic virtual clock and reproduces exactly
// for a fixed seed.
//
// The chaos experiment (fault injection, no attacker) and the fat-tree
// scale experiment are opt-in — they are not part of "all":
//
//	benchharness -experiment chaos -chaostrials 5 -chaosout BENCH_pr3.json
//	benchharness -experiment scale -seed 7
//	benchharness -experiment scale -shards 4 -scalek 16 -scalerounds 3
//
// So is the distributed-DoS experiment, which runs both flood variants
// at 1 and 2 shards and verifies the deterministic surface matches:
//
//	benchharness -experiment dos -dosk 4 -dosfloor 30000 -dosout BENCH_pr8.json
//
// And the clustered-controller failover experiment, which crashes a
// replica mid-run, measures the deterministic reconvergence and the
// LLI blind window, and evaluates the attack matrix under partitioned
// controller views at 1, 2 and 5 shards:
//
//	benchharness -experiment failover -seed 21 -failoverout BENCH_pr9.json
//
// And the discovery-protocol experiment, which compares the OFDP sweep
// against event-driven sOFTDP (steady-state load across fat-tree
// arities, link-failure detection latency, shard byte-identity of the
// sOFTDP event schedule, and the attack matrix under both protocols):
//
//	benchharness -experiment discovery -discoveryk 4,8,16,32 -discoveryout BENCH_pr10.json
//
// Profiling: -cpuprofile and -memprofile write pprof files for whatever
// experiment ran. Profiles observe wall-clock behavior only; they do not
// perturb the virtual clock, so profiled runs stay deterministic.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"sdntamper/internal/core"
	"sdntamper/internal/obs"
	"sdntamper/internal/obs/trace"
	"sdntamper/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchharness:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchharness", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "experiment id: all, table1, table2, table3, fig3, fig4, fig5678, fig10, fig11, fig12, fig13, inband, timeout, scan, alertflood, windows, profiles, ablation, matrix, obs, chaos, scale, dos, failover, discovery")
	seed := fs.Int64("seed", 1, "simulation seed")
	runs := fs.Int("runs", 100, "hijack runs for the Figure 5-8 distributions")
	workers := fs.Int("workers", 0, "worker goroutines for multi-trial experiments (0 = one per CPU, 1 = serial)")
	metricsPath := fs.String("metrics", "", "write the obs experiment's metrics snapshot to this file (.csv for CSV, anything else for JSON Lines)")
	tracePath := fs.String("trace", "", "obs/scale experiments: record causal spans and write them to this file (.jsonl for JSON Lines, anything else for Chrome trace_event JSON)")
	shards := fs.Int("shards", 0, "scale experiment: shard kernels (0 = legacy single-kernel path at k=4,8)")
	scaleK := fs.String("scalek", "4,8,16", "scale experiment: comma-separated fat-tree arities (sharded path only)")
	scaleRounds := fs.Int("scalerounds", 3, "scale experiment: steady-state ping rounds (sharded path only)")
	scaleParallel := fs.Bool("scaleparallel", true, "scale experiment: run shard epochs on parallel goroutines")
	dosK := fs.Int("dosk", 4, "dos experiment: fat-tree arity")
	dosFloor := fs.Float64("dosfloor", 0, "dos experiment: fail if any run executes fewer kernel events/s (0 = no floor)")
	dosOut := fs.String("dosout", "", "dos experiment: write the JSON report to this file")
	failoverOut := fs.String("failoverout", "", "failover experiment: write the JSON report to this file")
	discoveryK := fs.String("discoveryk", "4,8,16,32", "discovery experiment: comma-separated fat-tree arities for the load scan")
	discoveryOut := fs.String("discoveryout", "", "discovery experiment: write the JSON report to this file")
	chaosTrials := fs.Int("chaostrials", 5, "chaos experiment: seeded trials per fault class")
	chaosClasses := fs.String("chaosclasses", "", "chaos experiment: comma-separated fault classes (default all: flap-storm,loss-episode,latency-spike,disconnect)")
	chaosOut := fs.String("chaosout", "", "chaos experiment: write the JSON report to this file")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile, taken after the run, to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// The snapshot is taken by the deferred func once every experiment
		// has finished, so profile I/O never runs inside an experiment.
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchharness:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchharness:", err)
			}
		}()
	}

	experiments := map[string]func(int64, int) error{
		"table1":     func(s int64, _ int) error { return printTableI(s) },
		"table2":     func(int64, int) error { return printTableII() },
		"table3":     func(int64, int) error { return printTableIII() },
		"fig3":       func(s int64, _ int) error { return printFig3(s) },
		"fig4":       func(s int64, _ int) error { return printFig4(s) },
		"fig5678":    func(s int64, r int) error { return printFig5678(s, r, *workers) },
		"fig10":      func(s int64, _ int) error { return printFig10(s) },
		"fig11":      func(s int64, _ int) error { return printFig11(s) },
		"fig12":      func(s int64, _ int) error { return printFig12(s) },
		"fig13":      func(s int64, _ int) error { return printFig13(s) },
		"inband":     func(s int64, _ int) error { return printInBand(s) },
		"timeout":    func(s int64, _ int) error { return printTimeout(s) },
		"scan":       func(s int64, _ int) error { return printScan(s) },
		"alertflood": func(s int64, _ int) error { return printAlertFlood(s) },
		"matrix":     func(s int64, _ int) error { return printMatrix(s) },
		"windows":    printWindows,
		"induced":    func(s int64, _ int) error { return printInduced(s, *workers) },
		"secbind":    func(s int64, _ int) error { return printSecBind(s) },
		"profiles":   func(s int64, _ int) error { return printProfiles(s) },
		"ablation":   func(s int64, _ int) error { return printAblations(s) },
		"obs":        func(s int64, _ int) error { return printObs(s, *metricsPath, *tracePath) },
		"chaos": func(s int64, _ int) error {
			return printChaos(s, *chaosTrials, *workers, *chaosClasses, *chaosOut)
		},
		"scale": func(s int64, _ int) error {
			return printScale(s, *shards, *scaleK, *scaleRounds, *scaleParallel, *tracePath)
		},
		"dos": func(s int64, _ int) error {
			return printDoS(s, *dosK, *dosFloor, *dosOut)
		},
		"failover": func(s int64, _ int) error {
			return printFailover(s, *failoverOut)
		},
		"discovery": func(s int64, _ int) error {
			return printDiscovery(s, *discoveryK, *discoveryOut)
		},
	}

	if *experiment == "all" {
		order := []string{"table1", "table2", "table3", "fig3", "fig4", "fig5678",
			"fig10", "fig11", "fig12", "fig13", "inband", "timeout", "scan", "alertflood",
			"windows", "profiles", "ablation", "induced", "secbind", "matrix", "obs"}
		for _, id := range order {
			if err := experiments[id](*seed, *runs); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
		return nil
	}
	fn, ok := experiments[*experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	return fn(*seed, *runs)
}

func header(title string) {
	fmt.Println()
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 72))
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

func printTableI(seed int64) error {
	header("TABLE I: Liveness Probe Options (1000 scans, RTT excluded)")
	fmt.Printf("%-15s %-10s %-16s %s\n", "Type", "Stealth", "Requirements", "Timing (mean ± std)")
	for _, r := range core.RunTableI(seed, 1000) {
		fmt.Printf("%-15s %-10s %-16s %s ± %s\n", r.Probe, r.Stealth, r.Requirements, ms(r.Mean), ms(r.Std))
	}
	return nil
}

func printTableII() error {
	header("TABLE II: TOPOGUARD+ Performance Overhead (measured on this host)")
	rows, err := core.RunTableII(20000)
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %-12s %-12s %s\n", "Function", "Baseline", "With TG+", "Overhead")
	for _, r := range rows {
		fmt.Printf("%-20s %-12s %-12s %s\n", r.Function, r.Baseline, r.WithTGPlus, r.Overhead)
	}
	fmt.Println("(paper, 2018 Java/Floodlight: construction +0.134ms, processing +0.299ms)")
	return nil
}

func printTableIII() error {
	header("TABLE III: Link timeout and discovery intervals")
	fmt.Printf("%-14s %-26s %-14s %s\n", "Controller", "Link Discovery Interval", "Link Timeout", "Timeout/Interval")
	for _, r := range core.RunTableIII() {
		fmt.Printf("%-14s %-26s %-14s %.1fx\n", r.Controller, r.DiscoveryInterval, r.LinkTimeout, r.TimeoutFactor)
	}
	return nil
}

func printFig3(seed int64) error {
	header("FIGURE 3: Host location hijacking timeline (one run, offsets from victim down)")
	events, err := core.RunFig3Timeline(seed, false)
	if err != nil {
		return err
	}
	for _, e := range events {
		fmt.Printf("%+12s  %s\n", ms(e.Offset), e.Name)
	}
	return nil
}

func printFig4(seed int64) error {
	header("FIGURE 4: Distribution of ifconfig identity-change time (1000 trials)")
	series := core.RunFig4(seed, 1000)
	fmt.Println(series.Summary())
	fmt.Println(series.Histogram(16))
	fmt.Println("(paper: mean 9.94ms, heavy tail to ~160ms)")
	return nil
}

func printFig5678(seed int64, runs, workers int) error {
	header(fmt.Sprintf("FIGURES 5-8: Hijack phase distributions (%d runs, offsets from victim down)", runs))
	for _, mode := range []struct {
		name string
		tool bool
	}{
		{"mechanism only (50ms ARP probes, calibrated timeout)", false},
		{"with nmap tool-cost model (Table I ARP scan 133.5ms)", true},
	} {
		d, err := core.RunHijackDistributionsParallel(seed, runs, mode.tool, workers)
		if err != nil {
			return err
		}
		fmt.Printf("\n--- %s (%d/%d completed) ---\n", mode.name, d.AttackerUp.N(), runs)
		fmt.Printf("Fig 7  victim down -> final ping start : %s\n", d.LastPingStart.Summary())
		fmt.Printf("Fig 8  victim down -> attacker knows   : %s\n", d.KnownOffline.Summary())
		fmt.Printf("Fig 5  victim down -> attacker up      : %s\n", d.AttackerUp.Summary())
		fmt.Printf("Fig 6  victim down -> controller ack   : %s\n", d.ControllerAck.Summary())
		fmt.Printf("calibrated probe timeouts              : %s\n", d.ProbeTimeouts.Summary())
	}
	fmt.Println("\n(paper: attacker up 478ms mean, controller ack 549ms mean; the")
	fmt.Println(" difference vs our mechanism-mode numbers is nmap invocation cost,")
	fmt.Println(" see EXPERIMENTS.md)")
	return nil
}

func printFig10(seed int64) error {
	header("FIGURE 10: Latency of switch internal links (100 LLI samples per link)")
	series, err := core.RunFig10(seed, 100)
	if err != nil {
		return err
	}
	var keys []string
	byKey := map[string]*stats.DurationSeries{}
	for l, s := range series {
		k := l.String()
		keys = append(keys, k)
		byKey[k] = s
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%-22s %s\n", k, byKey[k].Summary())
	}
	fmt.Println("(paper: ~5ms average with micro-bursts to ~12ms)")
	return nil
}

func printFig11(seed int64) error {
	header("FIGURE 11: LLI threshold vs measured latencies (attack at t=60s)")
	res, err := core.RunFig11(seed, 5*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-22s %-10s %-10s %s\n", "t", "link", "latency", "threshold", "flagged")
	for _, p := range res.Points {
		flag := ""
		if p.Flagged {
			flag = "ALERT"
		}
		th := "-"
		if p.Threshold > 0 {
			th = ms(p.Threshold)
		}
		fmt.Printf("%-10s %-22s %-10s %-10s %s\n",
			p.At.Truncate(time.Millisecond), p.Link, ms(p.Latency), th, flag)
	}
	fmt.Printf("\nfabricated link blocked: %v; LLI alerts: %d\n", res.FabricatedBlocked, len(res.Alerts))
	return nil
}

func printFig12(seed int64) error {
	header("FIGURE 12: TOPOGUARD+ alerts for anomalous control messages (in-band attack)")
	alerts, err := core.RunFig12(seed, 2*time.Minute)
	if err != nil {
		return err
	}
	for _, a := range alerts {
		fmt.Println(a)
	}
	fmt.Printf("(%d CMM alerts over 2 minutes of in-band port amnesia)\n", len(alerts))
	return nil
}

func printFig13(seed int64) error {
	header("FIGURE 13: TOPOGUARD+ alerts for anomalous link latencies (OOB attack)")
	alerts, err := core.RunFig13(seed, 3*time.Minute)
	if err != nil {
		return err
	}
	for _, a := range alerts {
		fmt.Println(a)
	}
	fmt.Printf("(%d LLI alerts; paper's example: delay 22ms vs threshold 14ms)\n", len(alerts))
	return nil
}

func printInBand(seed int64) error {
	header("SECTION V-A: In-band context switching latency penalty")
	res, err := core.RunInBandLatency(seed, 3*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("real trunks      : %s\n", res.RealTrunk.Summary())
	fmt.Printf("fabricated link  : %s\n", res.Fabricated.Summary())
	fmt.Printf("amnesia cycles   : A=%d B=%d\n", res.CyclesA, res.CyclesB)
	fmt.Printf("penalty (means)  : %s\n", ms(res.Fabricated.Mean()-res.RealTrunk.Mean()))
	fmt.Println("(paper: >=16ms added per context switch from the 802.3 link-pulse interval)")
	return nil
}

func printTimeout(seed int64) error {
	header("SECTION V-B1: Probe timeout derivation")
	d := core.RunProbeTimeoutDerivation(seed)
	fmt.Printf("RTT model            : N(%.0fms, %.0fms)\n", d.RTTMeanMillis, d.RTTStdMillis)
	fmt.Printf("derived p99 timeout  : %s (FPR %.4f)\n", d.DerivedTimeout, d.FPRAtDerived)
	fmt.Printf("paper's choice       : %s (FPR %.4f)\n", d.PaperTimeout, d.FPRAtPaperChoice)
	return nil
}

func printScan(seed int64) error {
	header("SECTION V-B2: Scan detection by the Snort/ET surrogate")
	rows, err := core.RunScanDetection(seed, 30*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-10s %-8s %-10s %s\n", "Probe", "Rate/s", "Scans", "IDS hits", "Detected")
	for _, r := range rows {
		fmt.Printf("%-10s %-10.1f %-8d %-10d %v\n", r.Probe, r.RatePerSec, r.Scans, r.IDSAlerts, r.Detected)
	}
	fmt.Println("(paper: SYN detected above 2/s; ARP undetected even at 20/s)")
	return nil
}

func printAlertFlood(seed int64) error {
	header("SECTION IV-B: Alert flood against the defenses")
	res, err := core.RunAlertFlood(seed, 10*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("spoofed frames   : %d over %.0fs\n", res.SpoofedFrames, res.DurationSecs)
	fmt.Printf("alerts raised    : %d (%.1f/s)\n", res.AlertsRaised, res.AlertsPerSec)
	fmt.Printf("bindings moved   : %d of %d (alerts change no state)\n", res.BindingsMoved, res.VictimBindings)
	return nil
}

func printWindows(seed int64, runs int) error {
	header("SECTION IV-B2: Downtime windows vs attack completion")
	rows, err := core.RunDowntimeWindows(seed, runs, false, nil)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-10s %-12s %s\n", "Window", "Success", "Mean usable", "Usable fraction")
	for _, r := range rows {
		fmt.Printf("%-12s %-10.2f %-12s %.3f\n", r.Window, r.SuccessRate, r.MeanUsable, r.UsableFraction)
	}
	fmt.Println("(paper: live migration windows are seconds; maintenance windows minutes-hours;")
	fmt.Println(" the attack consumes a small constant slice of either)")
	return nil
}

func printProfiles(seed int64) error {
	header("TABLE III (behavioral): fabrication speed and linger per controller profile")
	rows, err := core.RunProfileSweep(seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %-20s %s\n", "Controller", "Time to fabricate", "Linger after relay stops")
	for _, r := range rows {
		fmt.Printf("%-14s %-20s %s\n", r.Controller, r.TimeToFabricate.Truncate(time.Millisecond), r.LingerAfterStop.Truncate(time.Millisecond))
	}
	return nil
}

func printAblations(seed int64) error {
	header("ABLATION: LLI outlier fence k in Q3 + k*IQR")
	rows, err := core.RunLLIAblation(seed, []float64{1.5, 3, 6}, []int{100}, 4*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-8s %-16s %-12s %-16s %s\n", "k", "window", "false positives", "detected", "detection delay", "benign links intact")
	for _, r := range rows {
		fmt.Printf("%-6.1f %-8d %d/%-14d %-12v %-16s %v\n",
			r.IQRMultiplier, r.WindowSize, r.FalsePositives, r.BenignSamples, r.Detected,
			r.DetectionDelay.Truncate(time.Millisecond), r.BenignLinksIntact)
	}

	header("ABLATION: control-link RTT averaging depth (§VI-D uses 3)")
	avg, err := core.RunControlAveragingAblation(seed, []int{1, 3, 9}, 3*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-14s %s\n", "samples", "latency mean", "latency std")
	for _, r := range avg {
		fmt.Printf("%-8d %-14s %s\n", r.ControlSamples, ms(r.LatencyMean), ms(r.LatencyStd))
	}
	return nil
}

func printInduced(seed int64, workers int) error {
	header("EXTENSION (SECTION IV-B): hypervisor-induced migration hijack")
	res, err := core.RunInducedMigration(seed)
	if err != nil {
		return err
	}
	fmt.Printf("resource DoS -> migration trigger : %s (balancer hysteresis)\n",
		res.MigrationStartedAt.Sub(res.LoadRaisedAt).Truncate(time.Millisecond))
	fmt.Printf("live-migration downtime window    : %s\n", res.Downtime.Truncate(time.Millisecond))
	fmt.Printf("hijack completed inside window    : %v (%s after window opened)\n",
		res.HijackWon, res.HijackCompletedAt.Sub(res.MigrationStartedAt).Truncate(time.Millisecond))
	fmt.Printf("alerts during window / after      : %d / %d\n", res.AlertsDuringWindow, res.AlertsAfterReturn)

	const trials = 20
	sum, err := core.RunInducedMigrationSeries(seed, trials, workers)
	if err != nil {
		return err
	}
	fmt.Printf("\nacross %d seeded trials:\n", sum.Runs)
	fmt.Printf("hijack win rate                   : %d/%d (%.0f%%)\n", sum.Wins, sum.Runs, 100*sum.WinRate)
	fmt.Printf("DoS -> migration trigger          : %s\n", sum.TriggerDelay.Summary())
	fmt.Printf("downtime window                   : %s\n", sum.Downtime.Summary())
	fmt.Printf("alerts during windows / after     : %d / %d\n", sum.AlertsDuring, sum.AlertsAfter)
	return nil
}

func printSecBind(seed int64) error {
	header("EXTENSION (SECTION VI-A): identifier binding vs port probing")
	v, err := core.RunPortProbingWithIdentifierBinding(seed)
	if err != nil {
		return err
	}
	fmt.Printf("port probing + hijack vs TopoGuard+SPHINX+SecBind: %s\n", v)
	fmt.Println("(the legitimate victim still migrates after re-authenticating;")
	fmt.Println(" the attacker, lacking the credential, cannot complete the move)")
	return nil
}

// printObs runs the Figure 9 testbed under TOPOGUARD+ for two virtual
// minutes with the full observability stack on: the deterministic metric
// registry, the structured event bus, and the (wall-clock, hence
// non-deterministic) kernel profile.
func printObs(seed int64, metricsPath, tracePath string) error {
	header("OBSERVABILITY: metrics, events and kernel profile (Fig 9 testbed, TOPOGUARD+)")
	s := core.NewFig9Testbed(seed, core.TopoGuardPlus())
	defer s.Close()
	var recorder *trace.Recorder
	if tracePath != "" {
		recorder = s.Net.EnableTrace(0)
	}
	profile := obs.NewKernelProfile(s.Net.Kernel, 30*time.Second)
	if err := s.Run(2 * time.Minute); err != nil {
		return err
	}
	profile.Stop()

	reg := s.Net.Metrics()
	snap := reg.Snapshot()
	fmt.Println("deterministic registry snapshot (selected series):")
	selected := []string{"sim_", "controller_", "defense_", "lli_"}
	for _, c := range snap.Counters {
		for _, p := range selected {
			if strings.HasPrefix(c.Name, p) {
				fmt.Printf("  %-70s %d\n", c.Name, c.Value)
				break
			}
		}
	}
	for _, h := range snap.Histograms {
		fmt.Printf("  %-70s n=%d p50=%s p99=%s\n", h.Name, h.Count, ms(h.P50), ms(h.P99))
	}

	bus := reg.Events()
	events := bus.Events()
	fmt.Printf("\nevent bus: %d retained of %d total; last 5:\n", len(events), bus.Total())
	tail := events
	if len(tail) > 5 {
		tail = tail[len(tail)-5:]
	}
	for _, ev := range tail {
		fmt.Printf("  %s\n", ev)
	}

	fmt.Println("\nkernel wall-time profile (non-deterministic, excluded from snapshots):")
	for _, ws := range profile.Samples() {
		fmt.Printf("  virtual %-8s wall %-12s events %d\n",
			ws.VirtualEnd, ws.Wall.Truncate(time.Microsecond), ws.Events)
	}

	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if strings.HasSuffix(metricsPath, ".csv") {
			err = snap.WriteCSV(f)
		} else {
			err = snap.WriteJSONL(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("\nmetrics snapshot written to %s\n", metricsPath)
	}
	if recorder != nil {
		if err := writeSpans(trace.Merge(recorder), recorder.Dropped(), tracePath); err != nil {
			return err
		}
	}
	return nil
}

// writeSpans exports a canonical span stream to path: JSON Lines for a
// .jsonl suffix, Chrome trace_event JSON (chrome://tracing, Perfetto)
// otherwise.
func writeSpans(spans []trace.Span, dropped uint64, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = trace.WriteJSONL(f, spans)
	} else {
		err = trace.WriteChrome(f, spans)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d spans written to %s (%d dropped from the ring)\n", len(spans), path, dropped)
	return nil
}

// printScale runs the fat-tree scale benchmark: full discovery plus
// reactive cross-pod forwarding under TOPOGUARD+. With shards == 0 it
// keeps the legacy single-kernel path at k=4 and k=8; with shards >= 1
// it runs the sharded kernel over the -scalek arities (k=16 builds
// 320 switches, k=32 builds 1280 — only reachable on the sharded path).
func printScale(seed int64, shards int, scaleK string, rounds int, parallel bool, tracePath string) error {
	if shards <= 0 {
		if tracePath != "" {
			return fmt.Errorf("-trace requires the sharded scale path (-shards >= 1)")
		}
		header("SCALE: k-ary fat-tree under TOPOGUARD+ (discovery + cross-pod traffic)")
		fmt.Printf("%-4s %-10s %-7s %-8s %-8s %-8s %-10s %s\n",
			"k", "switches", "hosts", "trunks", "links", "pings", "events", "wall")
		for _, k := range []int{4, 8} {
			r, err := core.RunScale(seed, k)
			if err != nil {
				return err
			}
			fmt.Printf("%-4d %-10d %-7d %-8d %-8d %d/%-6d %-10d %s\n",
				r.K, r.Switches, r.Hosts, r.Trunks, r.DirectedLinks,
				r.PingsAnswered, r.PingsSent, r.Events, r.Wall.Truncate(time.Millisecond))
		}
		fmt.Println("(all trunks discovered in both directions; wall time is host-dependent)")
		return nil
	}

	ks, err := parseInts(scaleK)
	if err != nil {
		return fmt.Errorf("-scalek: %w", err)
	}
	header(fmt.Sprintf("SCALE (sharded): fat-tree under TOPOGUARD+, %d shard(s), parallel=%v, %d rounds",
		shards, parallel, rounds))
	fmt.Printf("%-4s %-10s %-7s %-8s %-8s %-8s %-8s %-10s %-10s %s\n",
		"k", "switches", "hosts", "trunks", "xshard", "links", "pings", "events", "lookahead", "wall")
	var lastTraced *core.ShardedScaleResult
	for _, k := range ks {
		var r *core.ShardedScaleResult
		var err error
		if tracePath != "" {
			r, err = core.RunShardedScaleTraced(seed, k, shards, parallel, rounds)
		} else {
			r, err = core.RunShardedScale(seed, k, shards, parallel, rounds)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%-4d %-10d %-7d %-8d %-8d %-8d %d/%-6d %-10d %-10s %s\n",
			r.K, r.Switches, r.Hosts, r.Trunks, r.CrossTrunks, r.DirectedLinks,
			r.PingsAnswered, r.PingsSent, r.Events, r.Lookahead, r.Wall.Truncate(time.Millisecond))
		fmt.Printf("     per-shard events: %v  LLI false positives: %d\n", r.ShardEvents, r.LLIAlerts)
		if tracePath != "" {
			lastTraced = r
		}
	}
	if lastTraced != nil {
		if err := writeSpans(lastTraced.Spans, lastTraced.SpansDropped, tracePath); err != nil {
			return err
		}
		fmt.Println("shard health gauges (execution geometry, last arity):")
		for _, line := range strings.Split(strings.TrimSpace(lastTraced.HealthProm), "\n") {
			if !strings.HasPrefix(line, "#") {
				fmt.Printf("  %s\n", line)
			}
		}
	}
	fmt.Println("(event totals, link and ping outcomes are identical across shard counts;")
	fmt.Println(" wall time is host-dependent)")
	return nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values in %q", csv)
	}
	return out, nil
}

func printMatrix(seed int64) error {
	header("ATTACK-SUCCESS MATRIX (the headline result)")
	rows, err := core.RunAttackMatrix(seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-48s %-12s %-12s %-12s %s\n", "Attack", "TopoGuard", "SPHINX", "TOPOGUARD+", "FULLSTACK")
	for _, r := range rows {
		fmt.Printf("%-48s %-12s %-12s %-12s %s\n", r.Attack, r.VsTopoGuard, r.VsSphinx, r.VsTGPlus, r.VsFullStack)
	}
	return nil
}
