package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sdntamper/internal/core"
)

// failoverReport is the JSON artifact the failover experiment writes.
// Everything except the wall rows is produced on the virtual clock and
// verified byte-identical across the shard/parallel sweep before the
// file is written.
type failoverReport struct {
	Experiment string               `json:"experiment"`
	Seed       int64                `json:"seed"`
	Note       string               `json:"note"`
	Failover   *core.FailoverResult `json:"failover_all_shard_counts"`
	Matrix     []core.PartitionRow  `json:"partitioned_matrix_all_shard_counts"`
	Wall       []failoverWallRow    `json:"wall_nondeterministic"`
}

type failoverWallRow struct {
	Stage       string  `json:"stage"`
	Shards      int     `json:"shards"`
	Parallel    bool    `json:"parallel"`
	WallSeconds float64 `json:"wall_seconds"`
}

// failoverConfigs is the sweep every stage runs: the serial single-shard
// reference plus two sharded parallel configurations.
var failoverConfigs = []struct {
	shards   int
	parallel bool
}{
	{1, false},
	{2, true},
	{5, true},
}

// failoverRow canonicalizes a result for cross-configuration comparison:
// the shard/parallel identity fields differ by design, everything else
// must match the serial reference byte for byte.
func failoverRow(r *core.FailoverResult) (string, error) {
	c := *r
	c.Shards, c.Parallel = 0, false
	buf, err := json.Marshal(&c)
	return string(buf), err
}

// printFailover runs the clustered control-plane experiment: the
// replica-crash failover under full TOPOGUARD+ (election, role
// handover, state replay, rediscovery, and the LLI's re-learn window),
// then the attack matrix under partitioned controller views. Both
// stages run the full shard/parallel sweep and must be byte-identical
// to the serial reference; the failover must leak zero probes and raise
// zero spurious alerts.
func printFailover(seed int64, outPath string) error {
	header("FAILOVER: controller replica crash and partitioned-view matrix")
	report := failoverReport{
		Experiment: "failover",
		Seed:       seed,
		Note: "Failover and matrix rows are produced on the virtual clock and verified " +
			"byte-identical across the shard/parallel sweep before this file is written; " +
			"wall rows are host-dependent. lli_blind_window_ns is the crash-to-relearn " +
			"window during which the surviving master has no control-RTT baselines for " +
			"the re-homed switches and records latency measurements unenforced.",
	}

	var refRow, refProm string
	for _, cfg := range failoverConfigs {
		start := time.Now()
		res, err := core.RunFailover(seed, cfg.shards, cfg.parallel)
		if err != nil {
			return fmt.Errorf("failover shards=%d: %w", cfg.shards, err)
		}
		report.Wall = append(report.Wall, failoverWallRow{
			Stage: "failover", Shards: cfg.shards, Parallel: cfg.parallel,
			WallSeconds: time.Since(start).Seconds(),
		})
		row, err := failoverRow(res)
		if err != nil {
			return err
		}
		if refRow == "" {
			refRow, refProm = row, res.MetricsProm
			report.Failover = res
			continue
		}
		if row != refRow {
			return fmt.Errorf("failover shards=%d parallel=%v: deterministic surface diverged from serial reference",
				cfg.shards, cfg.parallel)
		}
		if res.MetricsProm != refProm {
			return fmt.Errorf("failover shards=%d parallel=%v: merged metrics not byte-identical",
				cfg.shards, cfg.parallel)
		}
	}
	fo := report.Failover
	if fo.PendingLeaked != 0 {
		return fmt.Errorf("failover leaked %d pending probes", fo.PendingLeaked)
	}
	if fo.FalseAlerts != 0 {
		return fmt.Errorf("failover raised %d spurious defense alerts", fo.FalseAlerts)
	}
	fmt.Println("replica 1 (master of switches 3-4) crashed under full TOPOGUARD+:")
	for _, line := range fo.Timeline {
		fmt.Printf("  %s\n", line)
	}
	fmt.Printf("reconvergence        : %s\n", time.Duration(fo.ReconvergenceNs).Truncate(time.Microsecond))
	fmt.Printf("LLI blind window     : %s\n", time.Duration(fo.BlindWindowNs).Truncate(time.Microsecond))
	fmt.Printf("replayed state       : %d links, %d hosts\n", fo.ReplayedLinks, fo.ReplayedHosts)
	fmt.Printf("pending probes leaked: %d\n", fo.PendingLeaked)
	fmt.Printf("spurious alerts      : %d\n", fo.FalseAlerts)

	var refMatrix, refMatrixProm string
	for _, cfg := range failoverConfigs {
		start := time.Now()
		res, err := core.RunPartitionedMatrix(seed, cfg.shards, cfg.parallel)
		if err != nil {
			return fmt.Errorf("matrix shards=%d: %w", cfg.shards, err)
		}
		report.Wall = append(report.Wall, failoverWallRow{
			Stage: "matrix", Shards: cfg.shards, Parallel: cfg.parallel,
			WallSeconds: time.Since(start).Seconds(),
		})
		rows, err := json.Marshal(res.Rows)
		if err != nil {
			return err
		}
		if refMatrix == "" {
			refMatrix, refMatrixProm = string(rows), res.MetricsProm
			report.Matrix = res.Rows
			continue
		}
		if string(rows) != refMatrix {
			return fmt.Errorf("matrix shards=%d parallel=%v: rows diverged from serial reference",
				cfg.shards, cfg.parallel)
		}
		if res.MetricsProm != refMatrixProm {
			return fmt.Errorf("matrix shards=%d parallel=%v: merged metrics not byte-identical",
				cfg.shards, cfg.parallel)
		}
	}
	fmt.Println("\npartitioned-view matrix (switches 1-2 on replica 0, 3-4 on replica 1):")
	fmt.Printf("%-45s %-11s %-11s %-11s %s\n", "Attack", "Replicated", "Fabricated", "Verdict", "Detected by")
	for _, row := range report.Matrix {
		by := "-"
		if len(row.DetectedBy) > 0 {
			by = fmt.Sprint(row.DetectedBy)
		}
		fmt.Printf("%-45s %-11v %-11v %-11s %s\n", row.Attack, row.Replicated, row.Fabricated, row.Verdict, by)
	}

	fmt.Println()
	fmt.Printf("%-10s %-8s %-10s %s\n", "Stage", "Shards", "Parallel", "Wall")
	for _, w := range report.Wall {
		fmt.Printf("%-10s %-8d %-10v %s\n", w.Stage, w.Shards, w.Parallel,
			time.Duration(w.WallSeconds*float64(time.Second)).Truncate(10*time.Millisecond))
	}
	fmt.Println("deterministic surface and merged metrics byte-identical across the shard/parallel sweep")

	if outPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("report written to", outPath)
	return nil
}
