package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"sdntamper/internal/chaos"
)

// chaosReport is the JSON artifact the chaos experiment writes: the
// configuration that produced it plus per-class aggregates and the raw
// per-trial rows. Everything runs on the virtual clock, so the file is
// byte-identical for a fixed (seed, classes, trials) regardless of the
// worker count.
type chaosReport struct {
	Experiment     string            `json:"experiment"`
	Seed           int64             `json:"seed"`
	TrialsPerClass int               `json:"trials_per_class"`
	Classes        []chaosClassRow   `json:"classes"`
	Trials         []chaosTrialRow   `json:"trials"`
	Metrics        map[string]uint64 `json:"metrics"`
}

type chaosClassRow struct {
	Class          string  `json:"class"`
	Trials         int     `json:"trials"`
	Recovered      int     `json:"recovered"`
	MeanRecoveryMS float64 `json:"mean_recovery_ms"`
	MaxRecoveryMS  float64 `json:"max_recovery_ms"`
	FalseAlerts    int     `json:"false_alerts"`
}

type chaosTrialRow struct {
	Class         string  `json:"class"`
	Seed          int64   `json:"seed"`
	FaultSpanMS   float64 `json:"fault_span_ms"`
	Recovered     bool    `json:"recovered"`
	RecoveryMS    float64 `json:"recovery_ms"`
	FalseAlerts   int     `json:"false_alerts"`
	PendingLeaked int     `json:"pending_leaked"`
}

func durMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// printChaos runs the fault-injection experiment: per fault class, seeded
// trials on the Figure 9 chaos testbed under the full TopoGuard+ stack,
// measuring discovery recovery time, defense false positives, and
// pending-probe leaks. With outPath set it also writes the JSON report.
func printChaos(seed int64, trials, workers int, classesCSV, outPath string) error {
	classes, err := parseChaosClasses(classesCSV)
	if err != nil {
		return err
	}
	header(fmt.Sprintf("CHAOS: discovery recovery and defense FPs under injected faults (%d trials/class)", trials))
	res, reg, err := chaos.Run(chaos.Config{
		Classes: classes,
		Trials:  trials,
		Workers: workers,
		Seed:    seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("%-15s %-10s %-16s %-16s %s\n", "Fault class", "Recovered", "Mean recovery", "Max recovery", "False alerts")
	for _, c := range res.Classes {
		fmt.Printf("%-15s %d/%-8d %-16s %-16s %d\n",
			c.Class, c.Recovered, c.Trials,
			c.MeanRecovery.Truncate(time.Millisecond),
			c.MaxRecovery.Truncate(time.Millisecond),
			c.FalseAlerts)
	}
	leaked := 0
	for _, t := range res.Trials {
		leaked += t.PendingLeaked
	}
	fmt.Printf("pending probes leaked across all trials: %d (must be 0)\n", leaked)
	fmt.Println("(no attacker is present: every alert during a fault episode is a false positive;")
	fmt.Println(" latency spikes legitimately trip the LLI — that is the paper's Fig 10/11 FP source)")

	if outPath == "" {
		return nil
	}
	report := chaosReport{
		Experiment:     "chaos",
		Seed:           seed,
		TrialsPerClass: trials,
		Metrics:        map[string]uint64{},
	}
	for _, c := range res.Classes {
		report.Classes = append(report.Classes, chaosClassRow{
			Class:          string(c.Class),
			Trials:         c.Trials,
			Recovered:      c.Recovered,
			MeanRecoveryMS: durMS(c.MeanRecovery),
			MaxRecoveryMS:  durMS(c.MaxRecovery),
			FalseAlerts:    c.FalseAlerts,
		})
	}
	for _, t := range res.Trials {
		report.Trials = append(report.Trials, chaosTrialRow{
			Class:         string(t.Class),
			Seed:          t.Seed,
			FaultSpanMS:   durMS(t.FaultSpan),
			Recovered:     t.Recovered,
			RecoveryMS:    durMS(t.RecoveryTime),
			FalseAlerts:   t.FalseAlerts,
			PendingLeaked: t.PendingLeaked,
		})
	}
	for _, c := range reg.Snapshot().Counters {
		if strings.HasPrefix(c.Name, "chaos_") || strings.HasPrefix(c.Name, "controller_switch_") ||
			c.Name == "controller_probe_failed_total" || c.Name == "controller_host_aged_out_total" {
			report.Metrics[c.Name] = c.Value
		}
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("chaos report written to %s\n", outPath)
	return nil
}

// parseChaosClasses resolves a comma-separated class list; empty selects
// every built-in class.
func parseChaosClasses(csv string) ([]chaos.Class, error) {
	if csv == "" {
		return chaos.Classes(), nil
	}
	var names []string
	for _, n := range strings.Split(csv, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return chaos.ParseClasses(names)
}
