package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sdntamper/internal/controller"
	"sdntamper/internal/core"
)

// discoveryReport is the JSON artifact the discovery experiment writes
// (BENCH_pr10.json). Everything except the wall columns is produced on
// the virtual clock and reproduces exactly for a fixed seed; the
// identity block is verified byte-identical across the shard/parallel
// sweep before the file is written.
type discoveryReport struct {
	Experiment string                 `json:"experiment"`
	Seed       int64                  `json:"seed"`
	Note       string                 `json:"note"`
	Load       []discoveryLoadRow     `json:"steady_state_load"`
	Detection  []discoveryDetectRow   `json:"link_failure_detection"`
	Identity   []discoveryIdentityRow `json:"softdp_shard_identity"`
	Matrix     []discoveryMatrixRow   `json:"attack_matrix_by_protocol"`
}

type discoveryLoadRow struct {
	K             int     `json:"k"`
	Protocol      string  `json:"protocol"`
	Switches      int     `json:"switches"`
	Ports         int     `json:"ports"`
	DirectedLinks int     `json:"directed_links"`
	BFDSessions   int64   `json:"bfd_sessions"`
	Probes        uint64  `json:"probes_in_window"`
	ProbeBytes    uint64  `json:"probe_bytes_in_window"`
	Events        uint64  `json:"kernel_events_in_window"`
	ProbesPerSec  float64 `json:"probes_per_sec"`
	EventsPerSec  float64 `json:"events_per_sec"`
	MeasureS      float64 `json:"measure_window_s"`
	WallSeconds   float64 `json:"wall_seconds"`
}

type discoveryDetectRow struct {
	Protocol        string   `json:"protocol"`
	DetectionMS     float64  `json:"detection_latency_ms"`
	DetectionFwdMS  float64  `json:"detection_fwd_ms"`
	DetectionRevMS  float64  `json:"detection_rev_ms"`
	EvictionReasons []string `json:"eviction_reasons"`
	FalseEvictions  int      `json:"false_evictions"`
	Recovered       bool     `json:"recovered"`
	RecoveryMS      float64  `json:"recovery_latency_ms"`
}

type discoveryIdentityRow struct {
	Shards      int     `json:"shards"`
	Parallel    bool    `json:"parallel"`
	Events      uint64  `json:"events_executed"`
	Leaked      int     `json:"pending_leaked"`
	WallSeconds float64 `json:"wall_seconds"`
}

type discoveryMatrixRow struct {
	Attack           string `json:"attack"`
	OFDPFullStack    string `json:"ofdp_full_stack"`
	SOFTDPFullStack  string `json:"softdp_full_stack"`
	SOFTDPNoDefenses string `json:"softdp_no_defenses"`
}

func parseKList(csv string) ([]int, error) {
	var ks []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		k, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad arity %q: %w", f, err)
		}
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("empty arity list")
	}
	return ks, nil
}

// printDiscovery runs the discovery-protocol experiment: steady-state
// load OFDP vs sOFTDP across fat-tree arities, link-failure detection
// latency (timeout sweep vs BFD watch), the sOFTDP shard byte-identity
// sweep, and the attack matrix under the protocol dimension. It enforces
// the headline claims — sOFTDP emits strictly fewer steady-state probes
// at every arity and at least 10x fewer at k>=16, detects a dead trunk
// faster than OFDP's link timeout, and evicts zero live links — and
// errors out if any fails, so CI can gate on the exit status.
func printDiscovery(seed int64, kcsv, outPath string) error {
	ks, err := parseKList(kcsv)
	if err != nil {
		return err
	}
	report := discoveryReport{
		Experiment: "discovery",
		Seed:       seed,
		Note: "Steady-state load is measured over a 150 s window after a 400 s settle " +
			"(sOFTDP's refresh backoff reaches its 150 s cap) on a quiescent fat-tree with " +
			"no defenses and no host traffic. Detection kills a trunk silently (loss=1.0, " +
			"no Port-Status) under TOPOGUARD+. The identity block is verified byte-identical " +
			"across the shard/parallel sweep before this file is written. Wall columns are " +
			"the only host-dependent content.",
	}

	header("DISCOVERY: steady-state load, OFDP sweep vs event-driven sOFTDP")
	fmt.Printf("%-4s %-8s %-9s %-7s %-7s %-12s %-12s %-12s %s\n",
		"k", "proto", "switches", "ports", "links", "probes/s", "bytes/s", "events/s", "sessions")
	for _, k := range ks {
		var ofdp, softdp *core.DiscoveryLoadResult
		for _, proto := range []controller.DiscoveryProtocol{controller.DiscoveryOFDP, controller.DiscoverySOFTDP} {
			res, err := core.RunDiscoveryLoad(seed, k, proto)
			if err != nil {
				return err
			}
			fmt.Printf("%-4d %-8s %-9d %-7d %-7d %-12.1f %-12.1f %-12.1f %d\n",
				res.K, res.Protocol, res.Switches, res.Ports, res.DirectedLinks,
				res.ProbesPerSec, float64(res.ProbeBytes)/res.MeasureVirtual.Seconds(),
				res.EventsPerSec, res.BFDSessions)
			report.Load = append(report.Load, discoveryLoadRow{
				K: res.K, Protocol: res.Protocol, Switches: res.Switches, Ports: res.Ports,
				DirectedLinks: res.DirectedLinks, BFDSessions: res.BFDSessions,
				Probes: res.Probes, ProbeBytes: res.ProbeBytes, Events: res.Events,
				ProbesPerSec: res.ProbesPerSec, EventsPerSec: res.EventsPerSec,
				MeasureS: res.MeasureVirtual.Seconds(), WallSeconds: res.Wall.Seconds(),
			})
			if proto == controller.DiscoveryOFDP {
				ofdp = res
			} else {
				softdp = res
			}
		}
		if softdp.Probes >= ofdp.Probes {
			return fmt.Errorf("k=%d: softdp emitted %d probes vs ofdp %d — event-driven discovery must probe less",
				k, softdp.Probes, ofdp.Probes)
		}
		if softdp.Events >= ofdp.Events {
			return fmt.Errorf("k=%d: softdp executed %d kernel events vs ofdp %d", k, softdp.Events, ofdp.Events)
		}
		ratio := float64(ofdp.Probes) / float64(softdp.Probes)
		fmt.Printf("     -> softdp probe reduction %.1fx, event reduction %.1fx\n",
			ratio, float64(ofdp.Events)/float64(softdp.Events))
		if k >= 16 && ratio < 10 {
			return fmt.Errorf("k=%d: softdp probe reduction %.1fx, want >= 10x", k, ratio)
		}
	}

	header("DISCOVERY: link-failure detection (silent trunk death, TOPOGUARD+)")
	fmt.Printf("%-8s %-16s %-24s %-8s %-10s %s\n",
		"proto", "detection", "reasons", "false", "recovered", "recovery")
	var det [2]*core.DiscoveryDetectionResult
	for i, proto := range []controller.DiscoveryProtocol{controller.DiscoveryOFDP, controller.DiscoverySOFTDP} {
		res, err := core.RunDiscoveryDetection(seed, proto)
		if err != nil {
			return err
		}
		det[i] = res
		fmt.Printf("%-8s %-16s %-24s %-8d %-10v %s\n",
			res.Protocol, ms(res.Detection), strings.Join(res.EvictionReasons, ","),
			res.FalseEvictions, res.Recovered, ms(res.Recovery))
		report.Detection = append(report.Detection, discoveryDetectRow{
			Protocol:        res.Protocol,
			DetectionMS:     durMS(res.Detection),
			DetectionFwdMS:  durMS(res.DetectionFwd),
			DetectionRevMS:  durMS(res.DetectionRev),
			EvictionReasons: res.EvictionReasons,
			FalseEvictions:  res.FalseEvictions,
			Recovered:       res.Recovered,
			RecoveryMS:      durMS(res.Recovery),
		})
	}
	ofdpDet, softdpDet := det[0], det[1]
	if softdpDet.Detection >= ofdpDet.Detection {
		return fmt.Errorf("softdp detection %v not faster than ofdp %v", softdpDet.Detection, ofdpDet.Detection)
	}
	if softdpDet.Detection > controller.Floodlight.LinkTimeout {
		return fmt.Errorf("softdp detection %v exceeds the OFDP link timeout %v",
			softdpDet.Detection, controller.Floodlight.LinkTimeout)
	}
	if softdpDet.FalseEvictions != 0 {
		return fmt.Errorf("softdp evicted %d live links", softdpDet.FalseEvictions)
	}
	if !softdpDet.Recovered || !ofdpDet.Recovered {
		return fmt.Errorf("repaired trunk not rediscovered (ofdp=%v softdp=%v)",
			ofdpDet.Recovered, softdpDet.Recovered)
	}

	header("DISCOVERY: sOFTDP shard byte-identity (k=4 fat-tree, churn scenario)")
	idRows, err := core.RunDiscoveryByteIdentity(seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-7s %-9s %-12s %-7s %s\n", "shards", "parallel", "events", "leaked", "wall")
	for _, r := range idRows {
		fmt.Printf("%-7d %-9v %-12d %-7d %.2fs\n", r.Shards, r.Parallel, r.Events, r.Leaked, r.Wall.Seconds())
		report.Identity = append(report.Identity, discoveryIdentityRow{
			Shards: r.Shards, Parallel: r.Parallel, Events: r.Events,
			Leaked: r.Leaked, WallSeconds: r.Wall.Seconds(),
		})
	}
	fmt.Println("sOFTDP churn scenario byte-identical across the shard/parallel sweep.")

	header("DISCOVERY: attack matrix under the protocol dimension")
	rows, err := core.RunDiscoveryMatrix(seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-48s %-12s %-14s %s\n", "Attack", "OFDP+full", "sOFTDP+full", "sOFTDP+none")
	for _, r := range rows {
		fmt.Printf("%-48s %-12s %-14s %s\n", r.Attack, r.OFDPFullStack, r.SOFTDPFullStack, r.SOFTDPNoDefenses)
		report.Matrix = append(report.Matrix, discoveryMatrixRow{
			Attack:           r.Attack,
			OFDPFullStack:    string(r.OFDPFullStack),
			SOFTDPFullStack:  string(r.SOFTDPFullStack),
			SOFTDPNoDefenses: string(r.SOFTDPNoDefenses),
		})
	}

	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", outPath)
	}
	return nil
}
