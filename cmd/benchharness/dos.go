package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sdntamper/internal/attack"
	"sdntamper/internal/core"
)

// dosReport is the JSON artifact the dos experiment writes. The
// invariants block is produced on the virtual clock and is byte-identical
// for a fixed (seed, k) regardless of shard count or parallel execution —
// the harness errors out if any configuration diverges from the serial
// reference before writing the file. Wall rows are the only
// host-dependent content and are labeled as such.
type dosReport struct {
	Experiment string          `json:"experiment"`
	Seed       int64           `json:"seed"`
	K          int             `json:"k"`
	Note       string          `json:"note"`
	Invariants []dosVariantRow `json:"invariants_all_shard_counts"`
	Wall       []dosWallRow    `json:"wall_nondeterministic"`
}

type dosVariantRow struct {
	Variant            string  `json:"variant"`
	Attackers          int     `json:"attackers"`
	DetectionLatencyMS float64 `json:"detection_latency_ms"`
	Blocks             int     `json:"blocks"`
	AttackerBlocks     int     `json:"attacker_blocks"`
	VictimBlocks       int     `json:"victim_backscatter_blocks"`
	FalseBlocks        int     `json:"false_blocks"`
	FalseBlockRate     float64 `json:"false_block_rate"`
	Unblocks           int     `json:"unblocks"`
	Reblocked          int     `json:"reblocked"`
	LegitFlows         uint64  `json:"legit_flows"`
	LegitPackets       uint64  `json:"legit_packets"`
	LegitBytes         uint64  `json:"legit_bytes"`
	AttackPackets      uint64  `json:"attack_packets"`
	Events             uint64  `json:"events_executed"`
	VirtualTimeS       float64 `json:"virtual_time_s"`
}

type dosWallRow struct {
	Variant      string  `json:"variant"`
	Shards       int     `json:"shards"`
	Parallel     bool    `json:"parallel"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// dosConfigs is the shard/parallel sweep every variant runs: the serial
// single-shard reference plus the most adversarial sharded configuration.
var dosConfigs = []struct {
	shards   int
	parallel bool
}{
	{1, false},
	{2, true},
}

func dosRow(r *core.DoSResult) dosVariantRow {
	row := dosVariantRow{
		Variant:            r.Variant,
		Attackers:          r.Attackers,
		DetectionLatencyMS: durMS(r.DetectionLatency),
		Blocks:             r.Blocks,
		AttackerBlocks:     r.AttackerBlocks,
		VictimBlocks:       r.VictimBlocks,
		FalseBlocks:        r.FalseBlocks,
		Unblocks:           r.Unblocks,
		Reblocked:          r.Reblocked,
		LegitFlows:         r.LegitFlows,
		LegitPackets:       r.LegitPackets,
		LegitBytes:         r.LegitBytes,
		AttackPackets:      r.AttackPackets,
		Events:             r.Events,
		VirtualTimeS:       r.VirtualTime.Seconds(),
	}
	if r.Blocks > 0 {
		row.FalseBlockRate = float64(r.FalseBlocks) / float64(r.Blocks)
	}
	return row
}

// printDoS runs the distributed-DoS experiment: both flood variants on
// the k-ary fat-tree under the full defense stack, each at every shard
// configuration. It asserts the deterministic surface (detection
// timeline, block classification, traffic totals, merged metrics) is
// identical across configurations, enforces the optional kernel
// throughput floor, and optionally writes the JSON report.
func printDoS(seed int64, k int, floor float64, outPath string) error {
	header(fmt.Sprintf("DOS: distributed floods vs rate monitor on the k=%d fat-tree", k))
	report := dosReport{
		Experiment: "dos",
		Seed:       seed,
		K:          k,
		Note: "Invariants are produced on the virtual clock and verified byte-identical " +
			"across the shard/parallel sweep before this file is written; wall rows are " +
			"host-dependent. false_blocks counts auto-blocks on ports that are neither " +
			"attacker ports nor the victim's own (backscatter) port — the legitimate " +
			"generator and its mid-run burst run through the whole attack.",
	}

	for _, variant := range []attack.DoSVariant{attack.SYNFlood, attack.LinkSaturation} {
		var ref *core.DoSResult
		for _, cfg := range dosConfigs {
			res, err := core.RunDoS(seed, k, cfg.shards, cfg.parallel, variant)
			if err != nil {
				return fmt.Errorf("%s shards=%d: %w", variant, cfg.shards, err)
			}
			eps := float64(res.Events) / res.Wall.Seconds()
			report.Wall = append(report.Wall, dosWallRow{
				Variant:      res.Variant,
				Shards:       cfg.shards,
				Parallel:     cfg.parallel,
				WallSeconds:  res.Wall.Seconds(),
				EventsPerSec: eps,
			})
			if floor > 0 && eps < floor {
				return fmt.Errorf("%s shards=%d: %.0f events/s below the %.0f floor",
					variant, cfg.shards, eps, floor)
			}
			if ref == nil {
				ref = res
				continue
			}
			if dosRow(res) != dosRow(ref) {
				return fmt.Errorf("%s shards=%d parallel=%v: deterministic surface diverged from serial reference",
					variant, cfg.shards, cfg.parallel)
			}
			if res.MetricsProm != ref.MetricsProm {
				return fmt.Errorf("%s shards=%d parallel=%v: merged metrics not byte-identical",
					variant, cfg.shards, cfg.parallel)
			}
		}
		if ref.FalseBlocks != 0 {
			return fmt.Errorf("%s: %d false blocks on legitimate traffic", variant, ref.FalseBlocks)
		}
		report.Invariants = append(report.Invariants, dosRow(ref))
	}

	fmt.Printf("%-12s %-10s %-16s %-24s %-10s %s\n",
		"Variant", "Attackers", "Detection", "Blocks (atk/victim/false)", "Reblocked", "False-block rate")
	for _, row := range report.Invariants {
		fmt.Printf("%-12s %-10d %-16s %d (%d/%d/%d)%-*s %-10d %.3f\n",
			row.Variant, row.Attackers,
			time.Duration(row.DetectionLatencyMS*float64(time.Millisecond)).Truncate(time.Millisecond),
			row.Blocks, row.AttackerBlocks, row.VictimBlocks, row.FalseBlocks,
			24-len(fmt.Sprintf("%d (%d/%d/%d)", row.Blocks, row.AttackerBlocks, row.VictimBlocks, row.FalseBlocks)), "",
			row.Reblocked, row.FalseBlockRate)
	}
	fmt.Println()
	fmt.Printf("%-12s %-8s %-10s %-12s %s\n", "Variant", "Shards", "Parallel", "Wall", "Events/s")
	for _, w := range report.Wall {
		fmt.Printf("%-12s %-8d %-10v %-12s %.0f\n",
			w.Variant, w.Shards, w.Parallel,
			time.Duration(w.WallSeconds*float64(time.Second)).Truncate(10*time.Millisecond), w.EventsPerSec)
	}
	fmt.Println("deterministic surface and merged metrics byte-identical across the shard/parallel sweep")

	if outPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("report written to", outPath)
	return nil
}
