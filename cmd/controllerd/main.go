// Command controllerd runs the library's SDN controller as a real TCP
// daemon: external agents speaking the repository's OpenFlow dialect
// (see internal/ofnet and cmd/ofprobe) connect as switches, and any of
// the defense stacks can be enforced on live control traffic.
//
//	controllerd -addr 127.0.0.1:6653 -defense topoguard+ -http 127.0.0.1:9090
//
// The deterministic simulation kernel is driven in real time; all the
// controller and defense logic is byte-for-byte the code the paper
// experiments run. With -http, the daemon additionally serves
// Prometheus-text metrics at /metrics and the live topology as Graphviz
// DOT at /topology.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served by -pprof
	"os"
	"os/signal"
	"strings"
	"time"

	"sdntamper/internal/controller"
	"sdntamper/internal/lldp"
	"sdntamper/internal/obs"
	"sdntamper/internal/obs/trace"
	"sdntamper/internal/rtnet"
	"sdntamper/internal/sim"
	"sdntamper/internal/sphinx"
	"sdntamper/internal/tgplus"
	"sdntamper/internal/topoguard"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	if err := run(os.Args[1:], sig, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "controllerd:", err)
		os.Exit(1)
	}
}

// defenseStacks maps each accepted -defense value to the modules it
// enables. The bool trio is (TopoGuard, SPHINX, TopoGuard+ extensions).
var defenseStacks = map[string][3]bool{
	"none":       {false, false, false},
	"topoguard":  {true, false, false},
	"sphinx":     {false, true, false},
	"both":       {true, true, false},
	"topoguard+": {true, false, true},
}

// run is the daemon body, factored out of main so tests can drive it:
// args are the command-line arguments, sig delivers the shutdown signal,
// and all status output goes to out.
func run(args []string, sig <-chan os.Signal, out io.Writer) error {
	fs := flag.NewFlagSet("controllerd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:6653", "listen address for switch connections")
	httpAddr := fs.String("http", "", "listen address for the observability HTTP endpoint (/metrics, /topology, /metrics/stream, /trace/stream); empty disables")
	pprofAddr := fs.String("pprof", "", "listen address for the net/http/pprof profiling endpoint (/debug/pprof/); empty disables")
	defense := fs.String("defense", "topoguard+", "defense stack: none, topoguard, sphinx, both, topoguard+")
	profileName := fs.String("profile", "floodlight", "timing profile: floodlight, pox, opendaylight")
	seed := fs.Int64("seed", 0, "simulation RNG seed (0 derives one from the wall clock)")
	status := fs.Duration("status", 10*time.Second, "status print interval (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var profile controller.Profile
	switch *profileName {
	case "floodlight":
		profile = controller.Floodlight
	case "pox":
		profile = controller.POX
	case "opendaylight":
		profile = controller.OpenDaylight
	default:
		return fmt.Errorf("unknown profile %q", *profileName)
	}
	stack, ok := defenseStacks[*defense]
	if !ok {
		return fmt.Errorf("unknown defense %q (want none, topoguard, sphinx, both, or topoguard+)", *defense)
	}
	wantTG, wantSphinx, wantTGPlus := stack[0], stack[1], stack[2]

	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	fmt.Fprintf(out, "seed %d\n", *seed)
	kernel := sim.New(sim.WithSeed(*seed))
	opts := []controller.Option{
		controller.WithProfile(profile),
		controller.WithLogf(func(format string, a ...any) {
			fmt.Fprintf(out, "[ctl] "+format+"\n", a...)
		}),
	}
	if wantTG || wantTGPlus {
		kc, err := lldp.NewKeychain([]byte(fmt.Sprintf("controllerd-%d", *seed)))
		if err != nil {
			return err
		}
		opts = append(opts, controller.WithKeychain(kc))
		if wantTGPlus {
			opts = append(opts, controller.WithLLDPTimestamps())
		}
	}
	ctl := controller.New(kernel, opts...)
	defer ctl.Shutdown()
	obs.InstrumentKernel(ctl.Metrics(), kernel)
	if wantTG {
		ctl.Register(topoguard.New())
	}
	var spx *sphinx.Sphinx
	if wantSphinx {
		spx = sphinx.New(sphinx.DefaultConfig())
		ctl.Register(spx)
		spx.Start()
		defer spx.Stop()
	}
	var lli *tgplus.LLI
	if wantTGPlus {
		ctl.Register(tgplus.NewCMM(0))
		lli = tgplus.NewLLI(tgplus.DefaultLLIConfig())
		ctl.Register(lli)
		lli.Start()
		defer lli.Stop()
	}

	driver := rtnet.NewDriver(kernel)
	driver.Start()
	defer driver.Stop()
	srv, err := rtnet.ServeController(*addr, ctl, driver)
	if err != nil {
		return err
	}
	defer srv.Shutdown()
	fmt.Fprintf(out, "controllerd listening on %s (profile=%s defense=%s)\n", srv.Addr(), profile.Name, *defense)

	if *httpAddr != "" {
		// The flight recorder rides along whenever the HTTP endpoint is
		// up, so /trace/stream can replay causal spans live. The daemon
		// runs in real time; the recorder's ring bounds its memory.
		rec := trace.NewRecorder(0)
		kernel.SetTracer(rec)
		ctl.SetTracer(rec)
		httpSrv, ln, err := serveObservability(*httpAddr, ctl, driver, rec)
		if err != nil {
			return err
		}
		defer httpSrv.Close()
		fmt.Fprintf(out, "observability endpoint on http://%s/metrics\n", ln.Addr())
	}

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return err
		}
		// net/http/pprof registered its handlers on the default mux at
		// import time; this server exposes only that.
		pprofSrv := &http.Server{Handler: http.DefaultServeMux}
		go pprofSrv.Serve(pln)
		defer pprofSrv.Close()
		fmt.Fprintf(out, "pprof endpoint on http://%s/debug/pprof/\n", pln.Addr())
	}

	var ticker *sim.Ticker
	if *status > 0 {
		driver.Call(func() {
			ticker = kernel.NewTicker(*status, func() {
				fmt.Fprintf(out, "[status] t=%s switches=%d links=%d hosts=%d alerts=%d\n",
					kernel.Elapsed().Truncate(time.Second),
					len(ctl.Switches()), len(ctl.Links()), len(ctl.Hosts()), len(ctl.Alerts()))
			})
		})
		defer driver.Call(func() { ticker.Stop() })
	}

	<-sig
	fmt.Fprintln(out, "\nshutting down")
	return nil
}

// serveObservability starts the HTTP endpoint exposing the controller's
// metrics registry (Prometheus text format) and live topology (Graphviz
// DOT). Handlers run on arbitrary HTTP goroutines, so every touch of
// controller or registry state is marshalled onto the kernel goroutine
// via driver.Call — the registry is not locked, the kernel owns it.
func serveObservability(addr string, ctl *controller.Controller, driver *rtnet.Driver, rec *trace.Recorder) (*http.Server, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var snap *obs.Snapshot
		driver.Call(func() { snap = ctl.Metrics().Snapshot() })
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WritePrometheus(w)
	})
	mux.HandleFunc("/topology", func(w http.ResponseWriter, _ *http.Request) {
		var dot string
		driver.Call(func() { dot = ctl.TopologyDot(nil) })
		w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
		io.WriteString(w, dot)
	})
	mux.HandleFunc("/trace/stream", func(w http.ResponseWriter, r *http.Request) {
		fl, ok := sseStart(w)
		if !ok {
			return
		}
		var cursor uint64
		ticker := time.NewTicker(time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-r.Context().Done():
				return
			case <-ticker.C:
			}
			var spans []trace.Span
			driver.Call(func() { spans, cursor = rec.SpansSince(cursor) })
			if len(spans) == 0 {
				io.WriteString(w, ": keepalive\n\n")
				fl.Flush()
				continue
			}
			var b strings.Builder
			if err := trace.WriteJSONL(&b, spans); err != nil {
				return
			}
			sseData(w, b.String())
			fl.Flush()
		}
	})
	mux.HandleFunc("/metrics/stream", func(w http.ResponseWriter, r *http.Request) {
		fl, ok := sseStart(w)
		if !ok {
			return
		}
		counters := map[string]uint64{}
		gauges := map[string]int64{}
		ticker := time.NewTicker(time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-r.Context().Done():
				return
			case <-ticker.C:
			}
			var snap *obs.Snapshot
			driver.Call(func() { snap = ctl.Metrics().Snapshot() })
			var b strings.Builder
			for _, c := range snap.Counters {
				if prev, seen := counters[c.Name]; !seen || c.Value != prev {
					fmt.Fprintf(&b, "{\"name\":%q,\"value\":%d,\"delta\":%d}\n", c.Name, c.Value, c.Value-prev)
					counters[c.Name] = c.Value
				}
			}
			for _, g := range snap.Gauges {
				if prev, seen := gauges[g.Name]; !seen || g.Value != prev {
					fmt.Fprintf(&b, "{\"name\":%q,\"value\":%d,\"delta\":%d}\n", g.Name, g.Value, g.Value-prev)
					gauges[g.Name] = g.Value
				}
			}
			if b.Len() == 0 {
				io.WriteString(w, ": keepalive\n\n")
				fl.Flush()
				continue
			}
			sseData(w, b.String())
			fl.Flush()
		}
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln, nil
}

// sseStart negotiates a server-sent-events response, reporting the
// flusher the event loop needs.
func sseStart(w http.ResponseWriter) (http.Flusher, bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return nil, false
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	return fl, true
}

// sseData writes one SSE event whose data lines are the given
// newline-separated payload (one JSON object per line).
func sseData(w io.Writer, payload string) {
	for _, line := range strings.Split(strings.TrimRight(payload, "\n"), "\n") {
		fmt.Fprintf(w, "data: %s\n", line)
	}
	io.WriteString(w, "\n")
}
