// Command controllerd runs the library's SDN controller as a real TCP
// daemon: external agents speaking the repository's OpenFlow dialect
// (see internal/ofnet and cmd/ofprobe) connect as switches, and any of
// the defense stacks can be enforced on live control traffic.
//
//	controllerd -addr 127.0.0.1:6653 -defense topoguard+ -http 127.0.0.1:9090
//
// The deterministic simulation kernel is driven in real time; all the
// controller and defense logic is byte-for-byte the code the paper
// experiments run. With -http, the daemon additionally serves
// Prometheus-text metrics at /metrics and the live topology as Graphviz
// DOT at /topology.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"sdntamper/internal/controller"
	"sdntamper/internal/lldp"
	"sdntamper/internal/obs"
	"sdntamper/internal/rtnet"
	"sdntamper/internal/sim"
	"sdntamper/internal/sphinx"
	"sdntamper/internal/tgplus"
	"sdntamper/internal/topoguard"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	if err := run(os.Args[1:], sig, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "controllerd:", err)
		os.Exit(1)
	}
}

// defenseStacks maps each accepted -defense value to the modules it
// enables. The bool trio is (TopoGuard, SPHINX, TopoGuard+ extensions).
var defenseStacks = map[string][3]bool{
	"none":       {false, false, false},
	"topoguard":  {true, false, false},
	"sphinx":     {false, true, false},
	"both":       {true, true, false},
	"topoguard+": {true, false, true},
}

// run is the daemon body, factored out of main so tests can drive it:
// args are the command-line arguments, sig delivers the shutdown signal,
// and all status output goes to out.
func run(args []string, sig <-chan os.Signal, out io.Writer) error {
	fs := flag.NewFlagSet("controllerd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:6653", "listen address for switch connections")
	httpAddr := fs.String("http", "", "listen address for the observability HTTP endpoint (/metrics, /topology); empty disables")
	defense := fs.String("defense", "topoguard+", "defense stack: none, topoguard, sphinx, both, topoguard+")
	profileName := fs.String("profile", "floodlight", "timing profile: floodlight, pox, opendaylight")
	seed := fs.Int64("seed", 0, "simulation RNG seed (0 derives one from the wall clock)")
	status := fs.Duration("status", 10*time.Second, "status print interval (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var profile controller.Profile
	switch *profileName {
	case "floodlight":
		profile = controller.Floodlight
	case "pox":
		profile = controller.POX
	case "opendaylight":
		profile = controller.OpenDaylight
	default:
		return fmt.Errorf("unknown profile %q", *profileName)
	}
	stack, ok := defenseStacks[*defense]
	if !ok {
		return fmt.Errorf("unknown defense %q (want none, topoguard, sphinx, both, or topoguard+)", *defense)
	}
	wantTG, wantSphinx, wantTGPlus := stack[0], stack[1], stack[2]

	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	fmt.Fprintf(out, "seed %d\n", *seed)
	kernel := sim.New(sim.WithSeed(*seed))
	opts := []controller.Option{
		controller.WithProfile(profile),
		controller.WithLogf(func(format string, a ...any) {
			fmt.Fprintf(out, "[ctl] "+format+"\n", a...)
		}),
	}
	if wantTG || wantTGPlus {
		kc, err := lldp.NewKeychain([]byte(fmt.Sprintf("controllerd-%d", *seed)))
		if err != nil {
			return err
		}
		opts = append(opts, controller.WithKeychain(kc))
		if wantTGPlus {
			opts = append(opts, controller.WithLLDPTimestamps())
		}
	}
	ctl := controller.New(kernel, opts...)
	defer ctl.Shutdown()
	obs.InstrumentKernel(ctl.Metrics(), kernel)
	if wantTG {
		ctl.Register(topoguard.New())
	}
	var spx *sphinx.Sphinx
	if wantSphinx {
		spx = sphinx.New(sphinx.DefaultConfig())
		ctl.Register(spx)
		spx.Start()
		defer spx.Stop()
	}
	var lli *tgplus.LLI
	if wantTGPlus {
		ctl.Register(tgplus.NewCMM(0))
		lli = tgplus.NewLLI(tgplus.DefaultLLIConfig())
		ctl.Register(lli)
		lli.Start()
		defer lli.Stop()
	}

	driver := rtnet.NewDriver(kernel)
	driver.Start()
	defer driver.Stop()
	srv, err := rtnet.ServeController(*addr, ctl, driver)
	if err != nil {
		return err
	}
	defer srv.Shutdown()
	fmt.Fprintf(out, "controllerd listening on %s (profile=%s defense=%s)\n", srv.Addr(), profile.Name, *defense)

	if *httpAddr != "" {
		httpSrv, ln, err := serveObservability(*httpAddr, ctl, driver)
		if err != nil {
			return err
		}
		defer httpSrv.Close()
		fmt.Fprintf(out, "observability endpoint on http://%s/metrics\n", ln.Addr())
	}

	var ticker *sim.Ticker
	if *status > 0 {
		driver.Call(func() {
			ticker = kernel.NewTicker(*status, func() {
				fmt.Fprintf(out, "[status] t=%s switches=%d links=%d hosts=%d alerts=%d\n",
					kernel.Elapsed().Truncate(time.Second),
					len(ctl.Switches()), len(ctl.Links()), len(ctl.Hosts()), len(ctl.Alerts()))
			})
		})
		defer driver.Call(func() { ticker.Stop() })
	}

	<-sig
	fmt.Fprintln(out, "\nshutting down")
	return nil
}

// serveObservability starts the HTTP endpoint exposing the controller's
// metrics registry (Prometheus text format) and live topology (Graphviz
// DOT). Handlers run on arbitrary HTTP goroutines, so every touch of
// controller or registry state is marshalled onto the kernel goroutine
// via driver.Call — the registry is not locked, the kernel owns it.
func serveObservability(addr string, ctl *controller.Controller, driver *rtnet.Driver) (*http.Server, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var snap *obs.Snapshot
		driver.Call(func() { snap = ctl.Metrics().Snapshot() })
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WritePrometheus(w)
	})
	mux.HandleFunc("/topology", func(w http.ResponseWriter, _ *http.Request) {
		var dot string
		driver.Call(func() { dot = ctl.TopologyDot(nil) })
		w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
		io.WriteString(w, dot)
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln, nil
}
