// Command controllerd runs the library's SDN controller as a real TCP
// daemon: external agents speaking the repository's OpenFlow dialect
// (see internal/ofnet and cmd/ofprobe) connect as switches, and any of
// the defense stacks can be enforced on live control traffic.
//
//	controllerd -addr 127.0.0.1:6653 -defense topoguard+
//
// The deterministic simulation kernel is driven in real time; all the
// controller and defense logic is byte-for-byte the code the paper
// experiments run.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"sdntamper/internal/controller"
	"sdntamper/internal/lldp"
	"sdntamper/internal/rtnet"
	"sdntamper/internal/sim"
	"sdntamper/internal/sphinx"
	"sdntamper/internal/tgplus"
	"sdntamper/internal/topoguard"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "controllerd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("controllerd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:6653", "listen address for switch connections")
	defense := fs.String("defense", "topoguard+", "defense stack: none, topoguard, sphinx, both, topoguard+")
	profileName := fs.String("profile", "floodlight", "timing profile: floodlight, pox, opendaylight")
	status := fs.Duration("status", 10*time.Second, "status print interval (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var profile controller.Profile
	switch *profileName {
	case "floodlight":
		profile = controller.Floodlight
	case "pox":
		profile = controller.POX
	case "opendaylight":
		profile = controller.OpenDaylight
	default:
		return fmt.Errorf("unknown profile %q", *profileName)
	}

	kernel := sim.New(sim.WithSeed(time.Now().UnixNano()))
	opts := []controller.Option{
		controller.WithProfile(profile),
		controller.WithLogf(func(format string, a ...any) {
			fmt.Printf("[ctl] "+format+"\n", a...)
		}),
	}
	wantTG := *defense == "topoguard" || *defense == "both" || *defense == "topoguard+"
	wantSphinx := *defense == "sphinx" || *defense == "both"
	wantTGPlus := *defense == "topoguard+"
	if wantTG || wantTGPlus {
		kc, err := lldp.NewKeychain([]byte(fmt.Sprintf("controllerd-%d", time.Now().UnixNano())))
		if err != nil {
			return err
		}
		opts = append(opts, controller.WithKeychain(kc))
		if wantTGPlus {
			opts = append(opts, controller.WithLLDPTimestamps())
		}
	}
	ctl := controller.New(kernel, opts...)
	defer ctl.Shutdown()
	if wantTG {
		ctl.Register(topoguard.New())
	}
	var spx *sphinx.Sphinx
	if wantSphinx {
		spx = sphinx.New(sphinx.DefaultConfig())
		ctl.Register(spx)
		spx.Start()
		defer spx.Stop()
	}
	var lli *tgplus.LLI
	if wantTGPlus {
		ctl.Register(tgplus.NewCMM(0))
		lli = tgplus.NewLLI(tgplus.DefaultLLIConfig())
		ctl.Register(lli)
		lli.Start()
		defer lli.Stop()
	}

	driver := rtnet.NewDriver(kernel)
	driver.Start()
	defer driver.Stop()
	srv, err := rtnet.ServeController(*addr, ctl, driver)
	if err != nil {
		return err
	}
	defer srv.Shutdown()
	fmt.Printf("controllerd listening on %s (profile=%s defense=%s)\n", srv.Addr(), profile.Name, *defense)

	var ticker *sim.Ticker
	if *status > 0 {
		driver.Call(func() {
			ticker = kernel.NewTicker(*status, func() {
				fmt.Printf("[status] t=%s switches=%d links=%d hosts=%d alerts=%d\n",
					kernel.Elapsed().Truncate(time.Second),
					len(ctl.Switches()), len(ctl.Links()), len(ctl.Hosts()), len(ctl.Alerts()))
			})
		})
		defer driver.Call(func() { ticker.Stop() })
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nshutting down")
	return nil
}
