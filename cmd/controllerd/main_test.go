package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the daemon goroutine write output while the test
// goroutine polls it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunRejectsUnknownProfile(t *testing.T) {
	err := run([]string{"-profile", "beacon"}, nil, io.Discard)
	if err == nil || !strings.Contains(err.Error(), `unknown profile "beacon"`) {
		t.Fatalf("err = %v, want unknown profile", err)
	}
}

func TestRunRejectsUnknownDefense(t *testing.T) {
	err := run([]string{"-defense", "topoguard++"}, nil, io.Discard)
	if err == nil || !strings.Contains(err.Error(), `unknown defense "topoguard++"`) {
		t.Fatalf("err = %v, want unknown defense", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	fs := run([]string{"-no-such-flag"}, nil, io.Discard)
	if fs == nil {
		t.Fatal("expected flag-parse error, got nil")
	}
}

// TestRunServesAndShutsDown boots the full daemon on ephemeral ports,
// scrapes the observability endpoint, and shuts it down via the signal
// channel, covering the -seed, -http, and clean-exit paths.
func TestRunServesAndShutsDown(t *testing.T) {
	sig := make(chan os.Signal, 1)
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-http", "127.0.0.1:0",
			"-seed", "42",
			"-status", "0",
			"-defense", "topoguard+",
		}, sig, out)
	}()

	httpRe := regexp.MustCompile(`observability endpoint on (http://[^/\s]+)/metrics`)
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := httpRe.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v\noutput:\n%s", err, out.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	if base == "" {
		t.Fatalf("HTTP endpoint never announced; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "seed 42\n") {
		t.Errorf("chosen seed not logged; output:\n%s", out.String())
	}

	metrics := httpGet(t, base+"/metrics")
	for _, want := range []string{
		"# TYPE controller_packetin_total counter",
		"controller_packetin_total 0",
		"# TYPE sim_events_executed_total counter",
		`defense_verdicts_total{module="TopoGuard",verdict="pass"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q; got:\n%s", want, metrics)
		}
	}
	topo := httpGet(t, base+"/topology")
	if !strings.Contains(topo, "digraph topology") {
		t.Errorf("/topology is not DOT; got:\n%s", topo)
	}

	sig <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down after signal")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("missing shutdown message; output:\n%s", out.String())
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return string(body)
}
