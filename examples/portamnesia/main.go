// Port amnesia walkthrough: the same out-of-band link fabrication attack
// is run three times — without the amnesia precursor against TopoGuard
// (caught), with it against TopoGuard + SPHINX (silent success and a
// man-in-the-middle position), and with it against TOPOGUARD+ (caught by
// the Link Latency Inspector).
package main

import (
	"fmt"
	"log"
	"time"

	"sdntamper/internal/attack"
	"sdntamper/internal/core"
	"sdntamper/internal/dataplane"
)

func main() {
	if err := runAll(); err != nil {
		log.Fatal(err)
	}
}

func runAll() error {
	fmt.Println("=== 1. naive LLDP relay vs TopoGuard ===")
	if err := naiveVsTopoGuard(); err != nil {
		return err
	}
	fmt.Println("\n=== 2. port amnesia + relay vs TopoGuard and SPHINX ===")
	if err := amnesiaVsBaselines(); err != nil {
		return err
	}
	fmt.Println("\n=== 3. port amnesia + relay vs TOPOGUARD+ ===")
	return amnesiaVsTGPlus()
}

// warm gives the attacker ports HOST profiles (the Figure 1 start state).
func warm(s *core.Scenario) error {
	if err := s.Run(2 * time.Second); err != nil {
		return err
	}
	s.Net.Host(core.HostAttackerA).ARPPing(s.Net.Host(core.HostClient).IP(), 300*time.Millisecond, func(dataplane.ProbeResult) {})
	s.Net.Host(core.HostAttackerB).ARPPing(s.Net.Host(core.HostServer).IP(), 300*time.Millisecond, func(dataplane.ProbeResult) {})
	return s.Run(2 * time.Second)
}

func report(s *core.Scenario, fab *attack.OOBFabrication) {
	link := core.FabricatedLinkAB()
	fmt.Printf("  fabricated link in topology: %v / reverse: %v\n",
		s.Controller().HasLink(link), s.Controller().HasLink(link.Reverse()))
	aToB, bToA := fab.RelayedLLDP()
	fmt.Printf("  LLDP relayed: A->B %d, B->A %d; bridged dataplane frames: %d\n",
		aToB, bToA, fab.BridgedFrames())
	alerts := s.Controller().Alerts()
	fmt.Printf("  alerts: %d\n", len(alerts))
	for _, a := range alerts {
		fmt.Printf("    %s\n", a)
	}
}

func naiveVsTopoGuard() error {
	s := core.NewFig1Scenario(1, core.TopoGuardOnly())
	defer s.Close()
	if err := warm(s); err != nil {
		return err
	}
	fab := attack.NewOOBFabrication(s.Net.Kernel,
		s.Net.Host(core.HostAttackerA), s.Net.Host(core.HostAttackerB), s.OOB,
		attack.FabricationConfig{UseAmnesia: false})
	fab.Start()
	if err := s.Run(40 * time.Second); err != nil {
		return err
	}
	report(s, fab)
	return nil
}

func amnesiaVsBaselines() error {
	s := core.NewFig1Scenario(2, core.BothBaselines())
	defer s.Close()
	if err := warm(s); err != nil {
		return err
	}
	fab := attack.NewOOBFabrication(s.Net.Kernel,
		s.Net.Host(core.HostAttackerA), s.Net.Host(core.HostAttackerB), s.OOB,
		attack.FabricationConfig{UseAmnesia: true, BridgeDataplane: true})
	fab.Start()
	if err := s.Run(40 * time.Second); err != nil {
		return err
	}
	report(s, fab)

	// Demonstrate the man-in-the-middle position: in Figure 1 the
	// fabricated link is the ONLY switch-switch path, so the client's
	// ping to the server must transit the attackers' bridge.
	client := s.Net.Host(core.HostClient)
	server := s.Net.Host(core.HostServer)
	client.ARPPing(server.IP(), 2*time.Second, func(r dataplane.ProbeResult) {
		fmt.Printf("  client ARP for server: alive=%v\n", r.Alive)
	})
	if err := s.Run(3 * time.Second); err != nil {
		return err
	}
	client.Ping(server.MAC(), server.IP(), 2*time.Second, func(r dataplane.ProbeResult) {
		fmt.Printf("  client ping server through the fabricated link: alive=%v rtt=%s\n", r.Alive, r.RTT)
	})
	if err := s.Run(3 * time.Second); err != nil {
		return err
	}
	fmt.Printf("  frames man-in-the-middled by the attackers: %d\n", fab.BridgedFrames())
	return nil
}

func amnesiaVsTGPlus() error {
	s := core.NewFig9Testbed(3, core.TopoGuardPlus())
	defer s.Close()
	// Calibration minute for the LLI, as in the paper's evaluation.
	if err := s.Run(60 * time.Second); err != nil {
		return err
	}
	fab := attack.NewOOBFabrication(s.Net.Kernel,
		s.Net.Host(core.HostAttackerA), s.Net.Host(core.HostAttackerB), s.OOB,
		attack.FabricationConfig{UseAmnesia: true})
	fab.Start()
	if err := s.Run(60 * time.Second); err != nil {
		return err
	}
	link := core.FabricatedLinkFig9()
	fmt.Printf("  fabricated link in topology: %v / reverse: %v\n",
		s.Controller().HasLink(link), s.Controller().HasLink(link.Reverse()))
	for _, a := range s.Controller().Alerts() {
		fmt.Printf("    %s\n", a)
	}
	return nil
}
