// Defense tour: watch TOPOGUARD+ at work on the Figure 9 testbed — the
// Link Latency Inspector calibrating on the real links, the attack
// arriving at t=60s, the alert log, and what happens to the forged link.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"sdntamper/internal/attack"
	"sdntamper/internal/core"
	"sdntamper/internal/stats"
	"sdntamper/internal/tgplus"
	"sdntamper/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	s := core.NewFig9Testbed(21, core.TopoGuardPlus())
	defer s.Close()

	capture := trace.NewLog(s.Net.Kernel, 8)

	fmt.Println("== phase 1: calibration ==")
	if err := s.Run(60 * time.Second); err != nil {
		return err
	}
	perLink := map[string]*stats.DurationSeries{}
	for _, sample := range s.LLI.Samples() {
		key := sample.Link.String()
		if perLink[key] == nil {
			perLink[key] = &stats.DurationSeries{}
		}
		perLink[key].Add(sample.Latency)
	}
	var keys []string
	for k := range perLink {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-22s %s\n", k, perLink[k].Summary())
	}
	for _, dpid := range s.Controller().Switches() {
		if oneWay, ok := s.LLI.ControlLatency(dpid); ok {
			fmt.Printf("  control link 0x%x: one-way estimate %s (avg of latest 3 probes)\n", dpid, oneWay)
		}
	}

	fmt.Println("\n== phase 2: the out-of-band attack begins at t=60s ==")
	fab := attack.NewOOBFabrication(s.Net.Kernel,
		s.Net.Host(core.HostAttackerA), s.Net.Host(core.HostAttackerB), s.OOB,
		attack.FabricationConfig{UseAmnesia: true})
	fab.Start()
	// The attack installs its own capture hooks once its amnesia resets
	// settle; tap on top of them shortly after so the log shows the
	// relayed probes in flight.
	s.Net.Kernel.Schedule(2*time.Second, func() {
		capture.TapHost(s.Net.Host(core.HostAttackerB), "attackerB")
	})
	if err := s.Run(90 * time.Second); err != nil {
		return err
	}

	fmt.Println("LLI alert log (the Figure 13 shape):")
	for _, a := range s.Controller().AlertsByReason(tgplus.ReasonAbnormalDelay) {
		fmt.Printf("  %s\n", a)
	}

	link := core.FabricatedLinkFig9()
	fmt.Printf("\nfabricated link in topology: %v (reverse: %v) — blocked on every round\n",
		s.Controller().HasLink(link), s.Controller().HasLink(link.Reverse()))
	fmt.Printf("real links still present: %d of 6\n", len(s.Controller().Links()))

	fmt.Println("\nlast frames seen on attackerB's NIC (the relayed probes it re-injects):")
	fmt.Print(capture.String())

	fmt.Println("\n== phase 3: why the threshold cannot be gamed ==")
	flagged, verified := 0, 0
	for _, sample := range s.LLI.Samples() {
		if sample.Link == link || sample.Link == link.Reverse() {
			if sample.Flagged {
				flagged++
			}
		} else {
			verified++
		}
	}
	fmt.Printf("verified (benign) measurements in the store window: %d\n", verified)
	fmt.Printf("fabricated-link measurements flagged: %d — flagged samples never enter\n", flagged)
	fmt.Println("the store, so a persistent attacker cannot drag the threshold upward.")
	return nil
}
