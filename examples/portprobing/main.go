// Port probing walkthrough: the attacker times a host-location hijack to
// the victim's migration window using ARP liveness probes, wins the race
// against TopoGuard's pre/post-condition checks and SPHINX's binding
// invariants, impersonates the victim, and is finally exposed when the
// real victim re-joins the network.
package main

import (
	"fmt"
	"log"
	"time"

	"sdntamper/internal/attack"
	"sdntamper/internal/core"
	"sdntamper/internal/dataplane"
	"sdntamper/internal/packet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	s := core.NewFig2Scenario(7, core.BothBaselines())
	defer s.Close()
	if err := s.Run(2 * time.Second); err != nil {
		return err
	}

	victim := s.Net.Host(core.HostVictim)
	attacker := s.Net.Host(core.HostAttackerA)
	client := s.Net.Host(core.HostClient)
	victimMAC, victimIP := victim.MAC(), victim.IP()

	// Baseline traffic so the Host Tracking Service knows everyone.
	client.ARPPing(victimIP, time.Second, func(dataplane.ProbeResult) {})
	attacker.ARPPing(client.IP(), time.Second, func(dataplane.ProbeResult) {})
	if err := s.Run(3 * time.Second); err != nil {
		return err
	}
	fmt.Println("host table before the attack:")
	fmt.Print(s.Controller().HostTableString())

	// Launch the port probing automaton: harvest the MAC with arping,
	// calibrate a probe timeout from measured RTTs (§V-B1), then scan
	// every 50ms until the victim disappears.
	cfg := attack.DefaultHijackConfig(core.AttackerLocFig2())
	cfg.ToolOverhead = nil // mechanism-mode timings for a readable timeline
	hj := attack.NewHijack(s.Net.Kernel, attacker, victimIP, cfg)
	s.Controller().Register(hj)

	var done bool
	var tl attack.Timeline
	hj.Start(func(got attack.Timeline) { tl = got; done = true })
	if err := s.Run(3 * time.Second); err != nil {
		return err
	}
	fmt.Printf("\ncalibrated probe timeout: %s (scans so far: %d)\n", hj.ProbeTimeout(), hj.ScanCount())

	// The victim begins a live migration.
	downAt := s.Net.Kernel.Now()
	fmt.Printf("victim interface down at t=%s\n", s.Net.Kernel.Elapsed())
	victim.InterfaceDown()
	if err := s.Run(5 * time.Second); err != nil {
		return err
	}
	if !done {
		return fmt.Errorf("hijack did not complete; alerts: %v", s.Controller().Alerts())
	}

	fmt.Println("\nhijack timeline (offsets from victim down):")
	off := func(t time.Time) string { return t.Sub(downAt).String() }
	fmt.Printf("  final probe start : %s (Fig 7)\n", off(tl.LastPingStart))
	fmt.Printf("  attacker knows    : %s (Fig 8)\n", off(tl.KnownOffline))
	fmt.Printf("  attacker up       : %s (Fig 5; ifconfig took %s)\n", off(tl.IdentityChanged), tl.IdentityChangeTook)
	fmt.Printf("  controller ack    : %s (Fig 6)\n", off(tl.ControllerAck))

	fmt.Println("\nhost table after the hijack (victim's identity on the attacker's port):")
	fmt.Print(s.Controller().HostTableString())
	fmt.Printf("alerts so far: %d (the race was won cleanly)\n", len(s.Controller().Alerts()))

	// Traffic for the victim now lands on the attacker.
	client.Ping(victimMAC, victimIP, time.Second, func(r dataplane.ProbeResult) {
		fmt.Printf("\nclient pings the 'victim': alive=%v — answered by the attacker\n", r.Alive)
	})
	if err := s.Run(2 * time.Second); err != nil {
		return err
	}

	// Eventually the real victim completes its migration and talks again:
	// the same identity is now active at two ports and the defenses notice.
	fmt.Println("\nvictim completes its migration and rejoins at 0x2:4 ...")
	reborn := s.Net.MoveHost("victim-returned", victimMAC.String(), victimIP.String(), 0x2, 4, nil)
	// A freshly migrated host announces itself with a gratuitous ARP;
	// being broadcast, it always reaches the controller.
	reborn.Send(packet.NewARPRequest(victimMAC, victimIP, victimIP))
	if err := s.Run(2 * time.Second); err != nil {
		return err
	}
	fmt.Printf("alerts after the victim's return: %d\n", len(s.Controller().Alerts()))
	for _, a := range s.Controller().Alerts() {
		fmt.Printf("  %s\n", a)
	}
	return nil
}
