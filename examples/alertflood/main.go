// Alert flood walkthrough: because TopoGuard and SPHINX only raise alerts
// (they cannot tell attacker from victim, and alerts change no network
// state), a single spoofing host can bury the operator's console — and a
// real hijack hides comfortably in the noise.
package main

import (
	"fmt"
	"log"
	"time"

	"sdntamper/internal/attack"
	"sdntamper/internal/core"
	"sdntamper/internal/dataplane"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	s := core.NewFig2Scenario(11, core.BothBaselines())
	defer s.Close()
	if err := s.Run(2 * time.Second); err != nil {
		return err
	}
	victim := s.Net.Host(core.HostVictim)
	client := s.Net.Host(core.HostClient)
	attacker := s.Net.Host(core.HostAttackerA)

	// Everyone says hello so the Host Tracking Service has bindings.
	client.ARPPing(victim.IP(), time.Second, func(dataplane.ProbeResult) {})
	attacker.ARPPing(client.IP(), time.Second, func(dataplane.ProbeResult) {})
	if err := s.Run(3 * time.Second); err != nil {
		return err
	}

	fmt.Println("spoofing the identities of two legitimate hosts, 100 frames/second...")
	flood := attack.NewAlertFlood(s.Net.Kernel, []*dataplane.Host{attacker},
		[]attack.SpoofTarget{
			{MAC: victim.MAC(), IP: victim.IP()},
			{MAC: client.MAC(), IP: client.IP()},
		}, 10*time.Millisecond)
	flood.Start()
	if err := s.Run(10 * time.Second); err != nil {
		return err
	}
	flood.Stop()

	alerts := s.Controller().Alerts()
	fmt.Printf("\nspoofed frames sent : %d\n", flood.Sent())
	fmt.Printf("alerts raised       : %d (%.1f per second)\n", len(alerts), float64(len(alerts))/10)
	fmt.Println("\nfirst five alerts the operator must triage:")
	for i, a := range alerts {
		if i == 5 {
			break
		}
		fmt.Printf("  %s\n", a)
	}

	// Crucially, nothing was blocked and nothing moved: the alerts are
	// pure noise, which is the denial-of-service.
	ve, _ := s.Controller().HostByMAC(victim.MAC())
	ce, _ := s.Controller().HostByMAC(client.MAC())
	fmt.Printf("\nvictim binding still at %s, client still at %s —\n", ve.Loc, ce.Loc)
	fmt.Println("the defenses alerted thousands of times and changed nothing.")
	fmt.Println("Which of these alerts is the real attack? The operator cannot tell.")
	return nil
}
