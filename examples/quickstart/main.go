// Quickstart: assemble a small SDN, let the controller discover the
// topology and learn the hosts, and exchange dataplane traffic — the
// "hello world" of the library.
package main

import (
	"fmt"
	"log"
	"time"

	"sdntamper/internal/controller"
	"sdntamper/internal/dataplane"
	"sdntamper/internal/netsim"
	"sdntamper/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One deterministic virtual network: two switches joined by a trunk,
	// a host on each, and a Floodlight-profile controller.
	net := netsim.New(42, controller.WithLogf(func(format string, args ...any) {
		fmt.Printf("[controller] "+format+"\n", args...)
	}))
	defer net.Shutdown()

	net.AddSwitch(0x1, nil)
	net.AddSwitch(0x2, nil)
	net.AddTrunk(0x1, 3, 0x2, 3, sim.Const(5*time.Millisecond))
	h1 := net.AddHost("h1", "aa:aa:aa:aa:aa:01", "10.0.0.1", 0x1, 1, sim.Const(time.Millisecond))
	h2 := net.AddHost("h2", "aa:aa:aa:aa:aa:02", "10.0.0.2", 0x2, 1, sim.Const(time.Millisecond))

	// Let the handshake and link discovery run.
	if err := net.Run(2 * time.Second); err != nil {
		return err
	}
	fmt.Println("\ndiscovered links:")
	for _, l := range net.Controller.Links() {
		fmt.Printf("  %s\n", l)
	}

	// ARP then ping across the trunk. Callbacks fire on the virtual
	// clock as the simulation advances.
	h1.ARPPing(h2.IP(), time.Second, func(r dataplane.ProbeResult) {
		fmt.Printf("\nh1: ARP who-has %s -> %s is-at %s (rtt %s)\n", h2.IP(), h2.IP(), r.MAC, r.RTT)
	})
	if err := net.Run(time.Second); err != nil {
		return err
	}
	h1.Ping(h2.MAC(), h2.IP(), time.Second, func(r dataplane.ProbeResult) {
		fmt.Printf("h1: ping %s alive=%v rtt=%s\n", h2.IP(), r.Alive, r.RTT)
	})
	if err := net.Run(time.Second); err != nil {
		return err
	}

	fmt.Println("\nhost tracking table:")
	fmt.Print(net.Controller.HostTableString())

	fmt.Printf("\nflow rules installed: s1=%d s2=%d\n",
		net.Switch(0x1).Table().Len(), net.Switch(0x2).Table().Len())
	fmt.Printf("virtual time elapsed: %s (wall time: microseconds)\n", net.Kernel.Elapsed())
	return nil
}
